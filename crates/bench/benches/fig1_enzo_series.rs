//! **Figure 1** — per-operation I/O time of the Enzo proxy's opening
//! phase, baseline vs interference:
//!
//! - (a) increasing amounts of `ior-easy-write` noise (1-3 instances);
//! - (b) data-intensive vs metadata-intensive noise.
//!
//! The paper's observations to reproduce: impact is *non-uniform* across
//! operations; most impacted ops get worse with more interference; and
//! the two noise types hit *different* operations.

use qi_bench::{is_smoke, results_dir};
use qi_simkit::percentile;
use quanterference::experiments::{
    fig_one_a, fig_one_b, impact_ratios, series_mean, series_table, FigOneConfig,
};

fn main() {
    let cfg = if is_smoke() {
        FigOneConfig::smoke()
    } else {
        FigOneConfig::paper()
    };
    let t0 = std::time::Instant::now();

    println!("Figure 1(a) — Enzo per-op I/O time vs write-noise intensity");
    let a = fig_one_a(&cfg, 3).expect("fig 1a generates");
    for s in &a {
        println!(
            "  {:<24} mean op time {:>9.3} ms",
            s.label,
            series_mean(s) * 1e3
        );
    }
    // Non-uniform impact: spread of per-op slowdown under max intensity.
    let ratios = impact_ratios(&a[0], &a[3]);
    println!(
        "  per-op slowdown under 3x noise: p10 {:.2}x, median {:.2}x, p90 {:.2}x, max {:.2}x",
        percentile(&ratios, 10.0),
        percentile(&ratios, 50.0),
        percentile(&ratios, 90.0),
        percentile(&ratios, 100.0),
    );
    println!(
        "  -> impact is non-uniform across ops{}",
        if percentile(&ratios, 90.0) > 1.5 * percentile(&ratios, 10.0).max(1e-9) {
            "  [matches paper]"
        } else {
            "  (spread small)"
        }
    );
    // Monotonicity: more instances → more mean impact.
    let means: Vec<f64> = a.iter().map(series_mean).collect();
    println!(
        "  mean op time by intensity: {:.3} / {:.3} / {:.3} / {:.3} ms -> {}",
        means[0] * 1e3,
        means[1] * 1e3,
        means[2] * 1e3,
        means[3] * 1e3,
        if means[3] > means[1] {
            "impact grows with intensity [matches paper]"
        } else {
            "MISMATCH"
        }
    );
    let path_a = results_dir().join("fig1a_enzo_vs_write_levels.csv");
    series_table(&a).write_csv(&path_a).expect("write CSV");

    println!("\nFigure 1(b) — Enzo per-op I/O time, data vs metadata noise");
    let b = fig_one_b(&cfg, 3).expect("fig 1b generates");
    for s in &b {
        println!(
            "  {:<38} mean op time {:>9.3} ms",
            s.label,
            series_mean(s) * 1e3
        );
    }
    // The paper's arrows: some ops suffer more under metadata noise even
    // though data noise dominates on average.
    let rd = impact_ratios(&b[0], &b[1]);
    let rm = impact_ratios(&b[0], &b[2]);
    let meta_dominant = rd
        .iter()
        .zip(&rm)
        .filter(|(d, m)| **m > **d && **m > 1.1)
        .count();
    println!(
        "  ops where metadata noise hurt MORE than data noise: {} of {}{}",
        meta_dominant,
        rd.len(),
        if meta_dominant > 0 {
            "  [matches paper's arrows]"
        } else {
            "  (none)"
        }
    );
    let path_b = results_dir().join("fig1b_enzo_noise_types.csv");
    series_table(&b).write_csv(&path_b).expect("write CSV");

    println!("\ngenerated in {:.1?}", t0.elapsed());
    println!("CSVs: {} and {}", path_a.display(), path_b.display());
}
