//! **Figure 4** — multi-class severity prediction on IO500: the output
//! layer grows to three bins (mild < 2×, moderate 2-5×, severe ≥ 5× —
//! thresholds after Lu et al.'s Perseus taxonomy, as in the paper), the
//! labels are re-bucketed, and the model is retrained. The paper
//! observes a strong diagonal with the middle bin slightly better
//! represented.

use qi_bench::{is_smoke, print_report, report_table, results_dir};
use quanterference::labeling::Bins;
use quanterference::predict::{family_spec, train_and_evaluate};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let mut spec = family_spec(&WorkloadKind::IO500, small);
    spec.bins = Bins::three_class();
    let tcfg = TrainConfig {
        epochs: if small { 25 } else { 50 },
        n_classes: 3,
        ..TrainConfig::default()
    };
    println!(
        "Figure 4: 3-class model on the IO500 grid ({} runs)...",
        spec.n_runs()
    );
    let t0 = std::time::Instant::now();
    let (gen, _, report) = train_and_evaluate(&spec, &tcfg, 42).expect("pipeline trains");
    print_report(
        "Fig. 4 — 3-class model, IO500 (bins at 2x and 5x)",
        &gen,
        &report,
    );

    // Diagonal-mass check (the paper's "vast majority" claim).
    let diag: u64 = (0..3).map(|c| report.cm.get(c, c)).sum();
    println!(
        "diagonal mass: {}/{} = {:.1}%  (paper: 'vast majority of samples')",
        diag,
        report.cm.total(),
        100.0 * diag as f64 / report.cm.total().max(1) as f64
    );
    for c in 0..3 {
        println!(
            "  bin {:<6} precision {:.3} recall {:.3} f1 {:.3}",
            report.labels[c],
            report.cm.precision(c),
            report.cm.recall(c),
            report.cm.f1(c)
        );
    }

    let path = results_dir().join("fig4_io500_multiclass.csv");
    report_table("io500-3class", &report)
        .write_csv(&path)
        .expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
