//! **Serving throughput** (DESIGN.md — serving layer, sharded).
//!
//! Two sweeps, one output file:
//!
//! 1. **Single engine** — a fixed stream of prediction requests through
//!    the qi-serve micro-batching engine at batch sizes 1, 8, and 32
//!    (the fused immutable inference path; the `threads` knob is inert
//!    on a single engine and swept only for baseline compatibility).
//! 2. **Sharded engine** — a multi-tenant stream (8 tenants) through
//!    [`ShardedServeEngine`] at 1/2/4/8 shards, every shard driven from
//!    its own rayon worker, reporting aggregate predictions/second.
//!
//! Writes `BENCH_serve.json` at the repository root with median
//! wall-clock times, per-row `shards`, the best
//! `aggregate_preds_per_sec`, and a `gate` object recording what was
//! gated and why (including any waiver reason).
//!
//! Gates:
//! - **Determinism (never waived):** every (batch, threads)
//!   configuration and every shard count must produce identical
//!   predicted classes.
//! - **Throughput:** on multi-core hosts the sharded sweep must reach
//!   ≥ 1,000,000 aggregate preds/s. On a single hardware thread that
//!   target is auto-waived (recorded in the JSON) and the gate becomes:
//!   single-shard fused throughput ≥ 1.5× the PR-4 recorded baseline
//!   of 328,414 preds/s (≈ 492,621). Smoke/quick runs auto-waive the
//!   throughput gate entirely — never the determinism gate.
//! - **p95 regression:** each row's p95 must stay within +10% of the
//!   previous recorded run (rows matched by name/threads/shards;
//!   baselines written before the `shards` column count as shards=1).
//!
//! Knobs:
//! - `QI_BENCH_THREADS=1,2,8` overrides the single-engine thread sweep.
//! - `QI_SERVE_SHARDS=1,2,4,8` overrides the shard-count sweep.
//! - `QI_SKIP_SERVE_GATE=1` skips the throughput gate (recorded).
//! - `QI_SKIP_P95_GATE=1` skips the p95 regression gate.
//! - `QI_BENCH_OUT=path.json` overrides the output path.
//! - `QI_BENCH_QUICK=1` (or `QI_SMOKE=1`) shrinks the request stream.

use std::time::Duration;

use criterion::Criterion;
use qi_bench::is_smoke;
use qi_ml::data::Dataset;
use qi_ml::train::{train, TrainConfig, TrainedModel};
use qi_pfs::ids::AppId;
use qi_serve::{
    ModelRegistry, OverloadPolicy, PredictRequest, ServeConfig, ServeEngine, ShardedServeEngine,
};
use qi_simkit::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Realistic serving shape: the small-cluster monitor emits 5 server
/// blocks of 42 features each (see `examples/serve_loop.rs`).
const SERVERS: usize = 5;
const FEATS: usize = 42;

/// Tenants for the sharded sweep: the FNV-1a routing spreads these
/// across up to 8 shards.
const N_TENANTS: u32 = 8;

/// PR-4's recorded single-engine throughput (BENCH_serve.json,
/// batch 32, 1 thread) — the reference for the single-core fused gate.
const PR4_BASELINE_PREDS_PER_SEC: f64 = 328_414.0;

fn model() -> TrainedModel {
    let mut rng = StdRng::seed_from_u64(42);
    let mut samples = Vec::new();
    let mut y = Vec::new();
    for i in 0..240 {
        let pos = i % 2 == 0;
        let block: Vec<f32> = (0..SERVERS * FEATS)
            .map(|_| {
                if pos {
                    rng.gen_range(0.5..2.0)
                } else {
                    rng.gen_range(-2.0..-0.5)
                }
            })
            .collect();
        samples.push(block);
        y.push(usize::from(pos));
    }
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    train(&Dataset::from_samples(samples, y, SERVERS), &cfg)
}

fn block_for(i: usize) -> Vec<f32> {
    (0..SERVERS * FEATS)
        .map(|j| {
            let h = ((i * SERVERS * FEATS + j) as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(7);
            (h >> 8) as f32 / (1u32 << 24) as f32 * 4.0 - 2.0
        })
        .collect()
}

/// The fixed single-tenant request stream: deterministic hash-filled
/// feature blocks.
fn requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| PredictRequest {
            tenant: AppId(0),
            window: i as u64,
            block: block_for(i),
        })
        .collect()
}

/// The multi-tenant stream for the sharded sweep: the same blocks,
/// round-robined over `N_TENANTS` applications.
fn sharded_requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| PredictRequest {
            tenant: AppId(1 + (i as u32 % N_TENANTS)),
            window: (i as u64) / u64::from(N_TENANTS),
            block: block_for(i),
        })
        .collect()
}

fn registry() -> ModelRegistry {
    let m = model();
    let mut reg = ModelRegistry::new(m.shape(), m.schema().clone());
    reg.insert(1, m).expect("model loads");
    reg.activate(1).expect("model activates");
    reg
}

fn engine(max_batch: usize, threads: usize) -> ServeEngine {
    ServeEngine::new(
        ServeConfig {
            max_batch,
            // The stream is driven by the size threshold alone.
            max_delay: SimDuration::from_secs(1_000_000),
            queue_cap: max_batch.max(32),
            admission: None,
            overload: OverloadPolicy::Shed,
            tenants: vec![AppId(0)],
            threads: Some(threads),
        },
        registry(),
    )
    .expect("valid config")
}

fn sharded_engine(n_shards: usize) -> ShardedServeEngine {
    ShardedServeEngine::new(
        ServeConfig {
            max_batch: 32,
            max_delay: SimDuration::from_secs(1_000_000),
            queue_cap: 64,
            admission: None,
            overload: OverloadPolicy::Shed,
            tenants: (1..=N_TENANTS).map(AppId).collect(),
            threads: None,
        },
        registry(),
        n_shards,
    )
    .expect("valid sharded config")
}

/// Push the whole stream through `e`, starting the simulated clock at
/// `tick` (the engine requires non-decreasing time across iterations).
fn drive(e: &mut ServeEngine, stream: &[PredictRequest], tick: &mut u64) -> Vec<usize> {
    let mut classes = Vec::with_capacity(stream.len());
    for req in stream {
        *tick += 1_000;
        let (_, done) = e.submit(SimTime(*tick), req.clone()).expect("bench submit");
        classes.extend(done.into_iter().map(|p| p.class));
    }
    *tick += 1_000;
    classes.extend(
        e.finish(SimTime(*tick))
            .expect("bench finish")
            .into_iter()
            .map(|p| p.class),
    );
    classes
}

/// Split the sharded stream by owning shard, preserving order and the
/// global index (which sets each request's simulated arrival instant).
fn partition(
    eng: &ShardedServeEngine,
    stream: &[PredictRequest],
) -> Vec<Vec<(usize, PredictRequest)>> {
    let mut per_shard = vec![Vec::new(); eng.n_shards()];
    for (i, req) in stream.iter().enumerate() {
        let s = eng.shard_of(req.tenant).expect("known tenant");
        per_shard[s].push((i, req.clone()));
    }
    per_shard
}

/// Drive every shard from its own rayon task; `base` offsets the
/// simulated clock so repeated iterations keep time non-decreasing.
/// Returns `(tenant, window, class)` triples from every shard.
fn drive_sharded(
    eng: &mut ShardedServeEngine,
    per_shard: &[Vec<(usize, PredictRequest)>],
    pool: &rayon::ThreadPool,
    base: u64,
    span: u64,
) -> Vec<(u32, u64, usize)> {
    let mut workers = eng.workers();
    let outs: Vec<Vec<(u32, u64, usize)>> = pool.install(|| {
        workers
            .par_iter_mut()
            .map(|w| {
                let mine = &per_shard[w.index()];
                let mut got = Vec::with_capacity(mine.len());
                for (i, req) in mine {
                    let now = SimTime(base + (*i as u64 + 1) * 1_000);
                    let (_, done) = w.submit(now, req.clone()).expect("shard submit");
                    got.extend(done.into_iter().map(|p| (p.tenant.0, p.window, p.class)));
                }
                got.extend(
                    w.finish(SimTime(base + span - 1_000))
                        .expect("shard finish")
                        .into_iter()
                        .map(|p| (p.tenant.0, p.window, p.class)),
                );
                got
            })
            .collect()
    });
    outs.into_iter().flatten().collect()
}

fn counts_from_env(var: &str, default: Vec<usize>) -> Vec<usize> {
    if let Ok(spec) = std::env::var(var) {
        let mut counts: Vec<usize> = spec
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        counts.dedup();
        if !counts.is_empty() {
            return counts;
        }
    }
    default
}

fn thread_counts() -> Vec<usize> {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, hw.max(4)];
    counts.sort_unstable();
    counts.dedup();
    counts_from_env("QI_BENCH_THREADS", counts)
}

struct BenchRow {
    name: String,
    batch: usize,
    threads: usize,
    shards: usize,
    median_ms: f64,
    p95_ms: f64,
    preds_per_sec: f64,
}

/// What the throughput gate decided, recorded verbatim in the JSON.
struct GateRecord {
    target: f64,
    measured: f64,
    passed: bool,
    waived: bool,
    reason: String,
}

/// A previous run's row, read back from `BENCH_serve.json` so the
/// current run can be gated against it.
struct BaselineRow {
    name: String,
    threads: usize,
    shards: usize,
    p95_ms: f64,
}

/// Parse the baseline JSON with plain string scanning (the repo has no
/// JSON dependency). Returns `(requests_per_run, rows-with-p95)`; rows
/// written before the `shards` column count as `shards = 1`, and rows
/// written before `p95_ms` are simply absent from the result.
fn read_baseline(out: &std::path::Path) -> Option<(usize, Vec<BaselineRow>)> {
    let text = std::fs::read_to_string(out).ok()?;
    let field = |chunk: &str, key: &str| -> Option<f64> {
        let at = chunk.find(&format!("\"{key}\":"))?;
        chunk[at..]
            .split_once(':')?
            .1
            .trim_start()
            .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .next()?
            .parse()
            .ok()
    };
    let string_field = |chunk: &str, key: &str| -> Option<String> {
        let at = chunk.find(&format!("\"{key}\": \""))?;
        let rest = &chunk[at + key.len() + 5..];
        Some(rest[..rest.find('"')?].to_string())
    };
    let requests = field(&text, "requests_per_run")? as usize;
    let benches = &text[text.find("\"benches\"")?..];
    let rows = benches
        .split('{')
        .skip(1)
        .filter_map(|chunk| {
            Some(BaselineRow {
                name: string_field(chunk, "name")?,
                threads: field(chunk, "threads")? as usize,
                shards: field(chunk, "shards").map_or(1, |s| s as usize),
                p95_ms: field(chunk, "p95_ms")?,
            })
        })
        .collect();
    Some((requests, rows))
}

fn write_json(
    rows: &[BenchRow],
    n_requests: usize,
    hw: usize,
    aggregate: f64,
    gate: &GateRecord,
    out: &std::path::Path,
) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    s.push_str(&format!("  \"requests_per_run\": {n_requests},\n"));
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench serve_throughput\",\n");
    s.push_str(&format!("  \"aggregate_preds_per_sec\": {aggregate:.1},\n"));
    s.push_str(&format!(
        "  \"gate\": {{\"target_preds_per_sec\": {:.1}, \"measured_preds_per_sec\": {:.1}, \
         \"passed\": {}, \"waived\": {}, \"reason\": \"{}\"}},\n",
        gate.target, gate.measured, gate.passed, gate.waived, gate.reason,
    ));
    s.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"batch\": {}, \"threads\": {}, \"shards\": {}, \
             \"median_ms\": {:.3}, \"p95_ms\": {:.3}, \"preds_per_sec\": {:.1}}}{}\n",
            r.name,
            r.batch,
            r.threads,
            r.shards,
            r.median_ms,
            r.p95_ms,
            r.preds_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_serve.json");
}

fn main() {
    let quick = is_smoke()
        || std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let counts = thread_counts();
    let shard_counts = counts_from_env("QI_SERVE_SHARDS", vec![1, 2, 4, 8]);
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_requests = if quick { 256 } else { 2048 };
    let samples = if quick { 2 } else { 5 };
    let batches = [1usize, 8, 32];

    println!(
        "serve throughput bench: {n_requests} requests, batches {batches:?}, \
         threads {counts:?}, shards {shard_counts:?} on {hw} hardware thread(s)"
    );

    // Determinism gate #1 (never waived): batching and threading must
    // not change a single predicted class on the single engine.
    let stream = requests(n_requests);
    let reference = {
        let mut tick = 0u64;
        drive(&mut engine(1, 1), &stream, &mut tick)
    };
    assert_eq!(reference.len(), n_requests);
    for &b in &batches {
        for &n in &counts {
            let mut tick = 0u64;
            let got = drive(&mut engine(b, n), &stream, &mut tick);
            assert_eq!(
                got, reference,
                "predictions diverged at batch {b}, {n} threads"
            );
        }
    }

    // Determinism gate #2 (never waived): the sharded engine must
    // produce identical (tenant, window, class) triples at every shard
    // count, parallel drive included.
    let mstream = sharded_requests(n_requests);
    let span = (n_requests as u64 + 2) * 1_000;
    let sorted = |mut v: Vec<(u32, u64, usize)>| {
        v.sort_unstable();
        v
    };
    let shard_reference = {
        let mut eng = sharded_engine(1);
        let per_shard = partition(&eng, &mstream);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        sorted(drive_sharded(&mut eng, &per_shard, &pool, 0, span))
    };
    assert_eq!(shard_reference.len(), n_requests);
    for &s in &shard_counts {
        let mut eng = sharded_engine(s);
        let per_shard = partition(&eng, &mstream);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(s.min(hw))
            .build()
            .expect("pool");
        let got = sorted(drive_sharded(&mut eng, &per_shard, &pool, 0, span));
        assert_eq!(got, shard_reference, "predictions diverged at {s} shards");
    }
    println!("determinism: all (batch, threads) and shard-count configurations agree");

    let mut c = Criterion::default()
        .with_budget(Duration::ZERO, Duration::ZERO)
        .min_samples(samples);
    for &b in &batches {
        for &n in &counts {
            // One engine per configuration; the simulated clock keeps
            // advancing across iterations, wall time is what's measured.
            let mut e = engine(b, n);
            let mut tick = 0u64;
            c.bench_function(&format!("serve_predict/batch{b}/{n}t"), |bench| {
                bench.iter(|| drive(&mut e, &stream, &mut tick))
            });
        }
    }
    for &s in &shard_counts {
        let mut eng = sharded_engine(s);
        let per_shard = partition(&eng, &mstream);
        let threads = s.min(hw);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let mut iter_no = 0u64;
        c.bench_function(&format!("serve_sharded/shards{s}/{threads}t"), |bench| {
            bench.iter(|| {
                let base = iter_no * span;
                iter_no += 1;
                let got = drive_sharded(&mut eng, &per_shard, &pool, base, span);
                assert_eq!(got.len(), n_requests);
            })
        });
    }

    let stats = c.results();
    let rows: Vec<BenchRow> = stats
        .iter()
        .map(|s| {
            let mut it = s.name.split('/');
            let kind = it.next().unwrap_or("");
            let spec = it.next().unwrap_or("");
            let threads: usize = it
                .next()
                .and_then(|t| t.trim_end_matches('t').parse().ok())
                .unwrap_or(1);
            let (batch, shards, name) = if kind == "serve_sharded" {
                let sh = spec.trim_start_matches("shards").parse().unwrap_or(1);
                (32, sh, format!("serve_sharded/shards{sh}"))
            } else {
                let b = spec.trim_start_matches("batch").parse().unwrap_or(1);
                (b, 1, format!("serve_predict/batch{b}"))
            };
            BenchRow {
                name,
                batch,
                threads,
                shards,
                median_ms: s.median_ms(),
                p95_ms: s.p95_ns / 1e6,
                preds_per_sec: n_requests as f64 / (s.median_ms() / 1_000.0),
            }
        })
        .collect();

    // Batching must pay for itself: comparing at the best thread count,
    // batch-32 must be at least as fast as unbatched.
    let best = |b: usize| {
        rows.iter()
            .filter(|r| r.shards == 1 && r.name.starts_with("serve_predict") && r.batch == b)
            .map(|r| r.preds_per_sec)
            .fold(0.0f64, f64::max)
    };
    let (t1, t32) = (best(1), best(32));
    println!("single engine, best thread count: batch1 {t1:.0} preds/s, batch32 {t32:.0} preds/s");
    assert!(
        t32 >= t1,
        "batch-32 throughput ({t32:.0}/s) fell below unbatched ({t1:.0}/s)"
    );

    // The sharded sweep's headline number.
    let aggregate = rows
        .iter()
        .filter(|r| r.name.starts_with("serve_sharded"))
        .map(|r| r.preds_per_sec)
        .fold(0.0f64, f64::max);
    let single_shard = rows
        .iter()
        .filter(|r| r.name.starts_with("serve_sharded") && r.shards == 1)
        .map(|r| r.preds_per_sec)
        .fold(0.0f64, f64::max)
        .max(t32);
    for r in rows.iter().filter(|r| r.name.starts_with("serve_sharded")) {
        println!(
            "{} shards / {} thread(s): {:.0} preds/s aggregate",
            r.shards, r.threads, r.preds_per_sec
        );
    }

    // Throughput gate. The multi-core target is 1M aggregate preds/s;
    // a single-hardware-thread host cannot express shard parallelism,
    // so the gate degrades (with a recorded reason) to: single-shard
    // fused throughput >= 1.5x the PR-4 baseline.
    let skip_gate = std::env::var("QI_SKIP_SERVE_GATE").is_ok_and(|v| v == "1");
    let single_core_target = PR4_BASELINE_PREDS_PER_SEC * 1.5;
    let gate = if skip_gate {
        GateRecord {
            target: 1_000_000.0,
            measured: aggregate,
            passed: aggregate >= 1_000_000.0,
            waived: true,
            reason: "QI_SKIP_SERVE_GATE=1".into(),
        }
    } else if quick {
        GateRecord {
            target: 1_000_000.0,
            measured: aggregate,
            passed: aggregate >= 1_000_000.0,
            waived: true,
            reason:
                "smoke/quick run: throughput gate auto-waived (determinism gates still enforced)"
                    .into(),
        }
    } else if hw == 1 {
        GateRecord {
            target: single_core_target,
            measured: single_shard,
            passed: single_shard >= single_core_target,
            waived: false,
            reason: format!(
                "single hardware thread: 1M aggregate gate waived; gating single-shard fused \
                 throughput >= 1.5x PR-4 baseline {PR4_BASELINE_PREDS_PER_SEC:.0} preds/s"
            ),
        }
    } else {
        GateRecord {
            target: 1_000_000.0,
            measured: aggregate,
            passed: aggregate >= 1_000_000.0,
            waived: false,
            reason: format!("{hw} hardware threads: gating aggregate >= 1M preds/s"),
        }
    };
    println!(
        "throughput gate: target {:.0} preds/s, measured {:.0} preds/s, {}{}",
        gate.target,
        gate.measured,
        if gate.passed { "passed" } else { "FAILED" },
        if gate.waived { " (waived)" } else { "" },
    );
    println!("  reason: {}", gate.reason);
    assert!(
        gate.passed || gate.waived,
        "serve throughput gate failed: measured {:.0} preds/s < target {:.0} preds/s ({})",
        gate.measured,
        gate.target,
        gate.reason
    );

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_serve.json")
        },
        std::path::PathBuf::from,
    );

    // p95 regression gate: each configuration's p95 batch latency must
    // stay within +10% of the previous recorded run. Skipped when the
    // baseline is absent/incomparable (different request count, or rows
    // written before p95 was recorded) or when QI_SKIP_P95_GATE=1 —
    // e.g. when re-baselining on different hardware.
    let skip_p95 = std::env::var("QI_SKIP_P95_GATE").is_ok_and(|v| v == "1");
    match read_baseline(&out) {
        _ if skip_p95 => println!("p95 gate skipped (QI_SKIP_P95_GATE=1)"),
        None => println!(
            "p95 gate skipped: no readable baseline at {}",
            out.display()
        ),
        Some((base_requests, _)) if base_requests != n_requests => println!(
            "p95 gate skipped: baseline ran {base_requests} requests, this run {n_requests}"
        ),
        Some((_, base_rows)) if base_rows.is_empty() => {
            println!("p95 gate skipped: baseline predates the p95_ms column")
        }
        Some((_, base_rows)) => {
            for r in &rows {
                let Some(base) = base_rows
                    .iter()
                    .find(|o| o.name == r.name && o.threads == r.threads && o.shards == r.shards)
                else {
                    continue;
                };
                let limit = base.p95_ms * 1.10;
                assert!(
                    r.p95_ms <= limit,
                    "serve p95 regression at {} / {} thread(s) / {} shard(s): {:.3} ms vs \
                     baseline {:.3} ms (+10% limit {:.3} ms)",
                    r.name,
                    r.threads,
                    r.shards,
                    r.p95_ms,
                    base.p95_ms,
                    limit
                );
            }
            println!("p95 gate: every matched configuration within +10% of the baseline");
        }
    }

    write_json(&rows, n_requests, hw, aggregate, &gate, &out);
    println!("wrote {}", out.display());
}
