//! **Serving throughput** (DESIGN.md — serving layer).
//!
//! Pushes a fixed stream of prediction requests through the qi-serve
//! micro-batching engine at batch sizes 1, 8, and 32 and at 1, 2, and N
//! worker threads, then writes `BENCH_serve.json` at the repository root
//! with median wall-clock times and predictions/second. Batching must
//! pay for itself: comparing each batch size at its best thread count,
//! batch-32 is asserted to be at least as fast as unbatched (per-thread
//! ratios are printed but not gated — oversubscribed hosts make them
//! scheduler noise).
//!
//! Determinism is asserted before timing: every (batch, threads)
//! configuration must produce the same predicted classes.
//!
//! Knobs:
//! - `QI_BENCH_THREADS=1,2,8` overrides the thread counts.
//! - `QI_BENCH_OUT=path.json` overrides the output path.
//! - `QI_BENCH_QUICK=1` (or `QI_SMOKE=1`) shrinks the request stream.

use std::time::Duration;

use criterion::Criterion;
use qi_bench::is_smoke;
use qi_ml::data::Dataset;
use qi_ml::train::{train, TrainConfig, TrainedModel};
use qi_pfs::ids::AppId;
use qi_serve::{ModelRegistry, OverloadPolicy, PredictRequest, ServeConfig, ServeEngine};
use qi_simkit::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Realistic serving shape: the small-cluster monitor emits 5 server
/// blocks of 42 features each (see `examples/serve_loop.rs`).
const SERVERS: usize = 5;
const FEATS: usize = 42;

fn model() -> TrainedModel {
    let mut rng = StdRng::seed_from_u64(42);
    let mut samples = Vec::new();
    let mut y = Vec::new();
    for i in 0..240 {
        let pos = i % 2 == 0;
        let block: Vec<f32> = (0..SERVERS * FEATS)
            .map(|_| {
                if pos {
                    rng.gen_range(0.5..2.0)
                } else {
                    rng.gen_range(-2.0..-0.5)
                }
            })
            .collect();
        samples.push(block);
        y.push(usize::from(pos));
    }
    let cfg = TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    };
    train(&Dataset::from_samples(samples, y, SERVERS), &cfg)
}

/// The fixed request stream: deterministic hash-filled feature blocks.
fn requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| {
            let block = (0..SERVERS * FEATS)
                .map(|j| {
                    let h = ((i * SERVERS * FEATS + j) as u32)
                        .wrapping_mul(2_654_435_761)
                        .wrapping_add(7);
                    (h >> 8) as f32 / (1u32 << 24) as f32 * 4.0 - 2.0
                })
                .collect();
            PredictRequest {
                tenant: AppId(0),
                window: i as u64,
                block,
            }
        })
        .collect()
}

fn engine(max_batch: usize, threads: usize) -> ServeEngine {
    let m = model();
    let mut reg = ModelRegistry::new(m.shape(), m.schema().clone());
    reg.insert(1, m).expect("model loads");
    reg.activate(1).expect("model activates");
    ServeEngine::new(
        ServeConfig {
            max_batch,
            // The stream is driven by the size threshold alone.
            max_delay: SimDuration::from_secs(1_000_000),
            queue_cap: max_batch.max(32),
            admission: None,
            overload: OverloadPolicy::Shed,
            tenants: vec![AppId(0)],
            threads: Some(threads),
        },
        reg,
    )
    .expect("valid config")
}

/// Push the whole stream through `e`, starting the simulated clock at
/// `tick` (the engine requires non-decreasing time across iterations).
fn drive(e: &mut ServeEngine, stream: &[PredictRequest], tick: &mut u64) -> Vec<usize> {
    let mut classes = Vec::with_capacity(stream.len());
    for req in stream {
        *tick += 1_000;
        let (_, done) = e.submit(SimTime(*tick), req.clone()).expect("bench submit");
        classes.extend(done.into_iter().map(|p| p.class));
    }
    *tick += 1_000;
    classes.extend(
        e.finish(SimTime(*tick))
            .expect("bench finish")
            .into_iter()
            .map(|p| p.class),
    );
    classes
}

fn thread_counts() -> Vec<usize> {
    if let Ok(spec) = std::env::var("QI_BENCH_THREADS") {
        let mut counts: Vec<usize> = spec
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        counts.dedup();
        if !counts.is_empty() {
            return counts;
        }
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, hw.max(4)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

struct BenchRow {
    batch: usize,
    threads: usize,
    median_ms: f64,
    p95_ms: f64,
    preds_per_sec: f64,
}

/// A previous run's row, read back from `BENCH_serve.json` so the
/// current run can be gated against it.
struct BaselineRow {
    batch: usize,
    threads: usize,
    p95_ms: f64,
}

/// Parse the baseline JSON with plain string scanning (the repo has no
/// JSON dependency). Returns `(requests_per_run, rows-with-p95)`; rows
/// written by older versions of this bench lack `p95_ms` and are simply
/// absent from the result.
fn read_baseline(out: &std::path::Path) -> Option<(usize, Vec<BaselineRow>)> {
    let text = std::fs::read_to_string(out).ok()?;
    let field = |chunk: &str, key: &str| -> Option<f64> {
        let at = chunk.find(&format!("\"{key}\":"))?;
        chunk[at..]
            .split_once(':')?
            .1
            .trim_start()
            .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
            .next()?
            .parse()
            .ok()
    };
    let requests = field(&text, "requests_per_run")? as usize;
    let rows = text
        .split('{')
        .skip(2) // the object header and its first brace
        .filter_map(|chunk| {
            Some(BaselineRow {
                batch: field(chunk, "batch")? as usize,
                threads: field(chunk, "threads")? as usize,
                p95_ms: field(chunk, "p95_ms")?,
            })
        })
        .collect();
    Some((requests, rows))
}

fn write_json(rows: &[BenchRow], n_requests: usize, hw: usize, out: &std::path::Path) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    s.push_str(&format!("  \"requests_per_run\": {n_requests},\n"));
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench serve_throughput\",\n");
    s.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"serve_predict/batch{}\", \"batch\": {}, \"threads\": {}, \
             \"median_ms\": {:.3}, \"p95_ms\": {:.3}, \"preds_per_sec\": {:.1}}}{}\n",
            r.batch,
            r.batch,
            r.threads,
            r.median_ms,
            r.p95_ms,
            r.preds_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_serve.json");
}

fn main() {
    let quick = is_smoke()
        || std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let counts = thread_counts();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let n_requests = if quick { 256 } else { 2048 };
    let samples = if quick { 2 } else { 5 };
    let batches = [1usize, 8, 32];

    println!(
        "serve throughput bench: {n_requests} requests, batches {batches:?}, \
         threads {counts:?} on {hw} hardware thread(s)"
    );

    // Determinism gate: batching and threading must not change a single
    // predicted class.
    let stream = requests(n_requests);
    let reference = {
        let mut tick = 0u64;
        drive(&mut engine(1, 1), &stream, &mut tick)
    };
    assert_eq!(reference.len(), n_requests);
    for &b in &batches {
        for &n in &counts {
            let mut tick = 0u64;
            let got = drive(&mut engine(b, n), &stream, &mut tick);
            assert_eq!(
                got, reference,
                "predictions diverged at batch {b}, {n} threads"
            );
        }
    }
    println!("determinism: all (batch, threads) configurations agree");

    let mut c = Criterion::default()
        .with_budget(Duration::ZERO, Duration::ZERO)
        .min_samples(samples);
    for &b in &batches {
        for &n in &counts {
            // One engine per configuration; the simulated clock keeps
            // advancing across iterations, wall time is what's measured.
            let mut e = engine(b, n);
            let mut tick = 0u64;
            c.bench_function(&format!("serve_predict/batch{b}/{n}t"), |bench| {
                bench.iter(|| drive(&mut e, &stream, &mut tick))
            });
        }
    }

    let stats = c.results();
    let rows: Vec<BenchRow> = stats
        .iter()
        .map(|s| {
            let mut it = s.name.split('/').skip(1);
            let batch = it
                .next()
                .and_then(|t| t.trim_start_matches("batch").parse().ok())
                .unwrap_or(1);
            let threads = it
                .next()
                .and_then(|t| t.trim_end_matches('t').parse().ok())
                .unwrap_or(1);
            BenchRow {
                batch,
                threads,
                median_ms: s.median_ms(),
                p95_ms: s.p95_ns / 1e6,
                preds_per_sec: n_requests as f64 / (s.median_ms() / 1_000.0),
            }
        })
        .collect();

    // Batching must pay for itself. Per-thread-count ratios are printed
    // for the record, but the hard gate compares each batch size at its
    // best thread count: on an oversubscribed host (more worker threads
    // than CPUs) the 2t/4t wall-clock numbers are scheduler noise, and
    // a strict per-count assertion flakes at quick sample counts.
    for &n in &counts {
        let tput = |b: usize| {
            rows.iter()
                .find(|r| r.batch == b && r.threads == n)
                .map(|r| r.preds_per_sec)
                .expect("row present")
        };
        let (t1, t32) = (tput(1), tput(32));
        println!(
            "{n} threads: batch1 {t1:.0} preds/s, batch32 {t32:.0} preds/s ({:.2}x)",
            t32 / t1
        );
    }
    let best = |b: usize| {
        rows.iter()
            .filter(|r| r.batch == b)
            .map(|r| r.preds_per_sec)
            .fold(0.0f64, f64::max)
    };
    let (t1, t32) = (best(1), best(32));
    println!("best of any thread count: batch1 {t1:.0} preds/s, batch32 {t32:.0} preds/s");
    assert!(
        t32 >= t1,
        "batch-32 throughput ({t32:.0}/s) fell below unbatched ({t1:.0}/s)"
    );

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_serve.json")
        },
        std::path::PathBuf::from,
    );

    // p95 regression gate: each configuration's p95 batch latency must
    // stay within +10% of the previous recorded run. Skipped when the
    // baseline is absent/incomparable (different request count, or rows
    // written before p95 was recorded) or when QI_SKIP_P95_GATE=1 —
    // e.g. when re-baselining on different hardware.
    let skip_gate = std::env::var("QI_SKIP_P95_GATE").is_ok_and(|v| v == "1");
    match read_baseline(&out) {
        _ if skip_gate => println!("p95 gate skipped (QI_SKIP_P95_GATE=1)"),
        None => println!(
            "p95 gate skipped: no readable baseline at {}",
            out.display()
        ),
        Some((base_requests, _)) if base_requests != n_requests => println!(
            "p95 gate skipped: baseline ran {base_requests} requests, this run {n_requests}"
        ),
        Some((_, base_rows)) if base_rows.is_empty() => {
            println!("p95 gate skipped: baseline predates the p95_ms column")
        }
        Some((_, base_rows)) => {
            for r in &rows {
                let Some(base) = base_rows
                    .iter()
                    .find(|o| o.batch == r.batch && o.threads == r.threads)
                else {
                    continue;
                };
                let limit = base.p95_ms * 1.10;
                assert!(
                    r.p95_ms <= limit,
                    "serve p95 regression at batch {} / {} thread(s): {:.3} ms vs \
                     baseline {:.3} ms (+10% limit {:.3} ms)",
                    r.batch,
                    r.threads,
                    r.p95_ms,
                    base.p95_ms,
                    limit
                );
            }
            println!("p95 gate: every configuration within +10% of the baseline");
        }
    }

    write_json(&rows, n_requests, hw, &out);
    println!("wrote {}", out.display());
}
