//! **Table I** — IO500 task slowdown under each type of interfering I/O
//! pattern: every IO500 task runs standalone and then with 3 concurrent
//! instances of each of the 7 tasks as background noise; cells report
//! the mean completion-time slowdown.
//!
//! Paper reference values (shape, not absolutes): the heaviest cells are
//! read-vs-read (29.3×, 10.7×), bulk-write-vs-bulk-write (2.7-5.0×) and
//! tiny-writes-behind-bulk-writes (26.2×, 40.9×); metadata noise barely
//! touches data tasks, and mdt-hard-read is only sensitive to metadata
//! mutations.

use qi_bench::{is_smoke, results_dir};
use quanterference::experiments::{table_one, TableOneConfig};
use quanterference::WorkloadKind;

fn main() {
    let cfg = if is_smoke() {
        TableOneConfig::smoke()
    } else {
        TableOneConfig::paper()
    };
    println!(
        "Table I — IO500 cross-interference slowdown matrix ({} scale)",
        if is_smoke() { "smoke" } else { "paper" }
    );
    let t0 = std::time::Instant::now();
    let table = table_one(&cfg).expect("table generates");
    println!("{}", table.render());
    println!("generated in {:.1?}", t0.elapsed());

    // Shape checks mirroring the paper's two key insights (§II-A).
    let cell = |a, b| table.cell(a, b).unwrap_or(f64::NAN);
    use WorkloadKind::*;
    println!("\nshape checks (paper insight 1: impact depends on noise type):");
    let rr = cell(IorEasyRead, IorEasyRead);
    let rw = cell(IorEasyRead, IorEasyWrite);
    println!(
        "  ior-easy-read: read-noise {rr:.2}x vs write-noise {rw:.2}x  -> {}",
        if rr > rw {
            "reads hurt reads more  [matches paper]"
        } else {
            "MISMATCH"
        }
    );
    let ww = cell(IorEasyWrite, IorHardWrite);
    let wm = cell(IorEasyWrite, MdtEasyWrite);
    println!(
        "  ior-easy-write: write-noise {ww:.2}x vs mdt-noise {wm:.2}x -> {}",
        if ww > wm {
            "writes hurt writes more [matches paper]"
        } else {
            "MISMATCH"
        }
    );
    let tiny = cell(MdtHardWrite, IorEasyWrite);
    println!(
        "  mdt-hard-write under bulk writes: {tiny:.2}x -> {}",
        if tiny > 2.0 {
            "tiny writes drown behind bulk writes [matches paper]"
        } else {
            "MISMATCH"
        }
    );
    println!("\nshape check (paper insight 2: phases suffer disproportionately):");
    let col: Vec<f64> = table.tasks.iter().map(|&t| cell(t, IorEasyWrite)).collect();
    let max = col.iter().cloned().fold(f64::NAN, f64::max);
    let min = col.iter().cloned().fold(f64::NAN, f64::min);
    println!("  under the SAME ior-easy-write noise, task slowdowns span {min:.2}x..{max:.2}x");

    let path = results_dir().join("table1_io500_matrix.csv");
    table.to_table().write_csv(&path).expect("write CSV");
    println!("\nCSV: {}", path.display());
}
