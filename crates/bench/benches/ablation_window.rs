//! **Ablation: time-window size** (DESIGN.md — the paper leaves the
//! aggregation window "user-defined"; §III-A/B).
//!
//! Shorter windows give more, noisier samples and faster reaction;
//! longer windows smooth the signal but blur phase transitions. This
//! sweep retrains the IO500 binary model at several window lengths.

use qi_bench::{is_smoke, results_dir, summary_table};
use qi_monitor::window::WindowConfig;
use qi_simkit::time::SimDuration;
use quanterference::predict::{family_spec, train_and_evaluate, EvalReport};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let tcfg = TrainConfig {
        epochs: if small { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let windows_ms: [u64; 4] = [500, 1000, 2000, 4000];
    let t0 = std::time::Instant::now();
    let mut reports: Vec<(String, EvalReport, usize)> = Vec::new();
    for ms in windows_ms {
        let mut spec = family_spec(&WorkloadKind::IO500, small);
        spec.window = WindowConfig {
            window: SimDuration::from_millis(ms),
        };
        println!("Ablation (window): {ms} ms windows...");
        let (gen, _, report) = train_and_evaluate(&spec, &tcfg, 42).expect("pipeline trains");
        reports.push((format!("{ms} ms"), report, gen.data.len()));
    }

    println!("\nwindow-size sweep:");
    let rows: Vec<(&str, &EvalReport)> = reports.iter().map(|(n, r, _)| (n.as_str(), r)).collect();
    let table = summary_table(&rows);
    println!("{}", table.render());
    for (name, report, n) in &reports {
        println!(
            "  {name:>8}: {n:>6} windows, F1 {:.3}",
            report.headline_f1()
        );
    }

    let path = results_dir().join("ablation_window.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
