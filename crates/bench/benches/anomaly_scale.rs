//! **Anomaly-detection scale bench** (DESIGN.md — anomaly detection &
//! adaptive monitoring).
//!
//! Three costs of the PR-9 subsystems, measured on the canonical
//! anomaly session and on a synthetic quiet cluster:
//!
//! 1. `score_throughput` — isolation-forest scoring rate: fit on the
//!    healthy session windows, then score a large tiled probe batch
//!    through the rayon batch path (best-of-N wall time, vectors/sec
//!    and µs per window-vector).
//! 2. `sampler` — adaptive-sampler ingest reduction. Two regimes: a
//!    *quiet* synthetic cluster (devices idle 4 windows out of 5) and
//!    the real faulted session. For the quiet regime the bench also
//!    checks feature drift: the newest sample of every
//!    `(device, window)` group — the cumulative-counter boundary the
//!    window features are computed from — must survive sampling
//!    bit-identically.
//! 3. `ring` — trace-store memory proxy: stored cells and approximate
//!    bytes of the unbounded `Vec` store vs the RLE ring on the same
//!    faulted run, plus a tight ring's eviction accounting.
//!
//! **Anomaly gate** (non-zero exit on failure, `QI_SKIP_ANOMALY_GATE=1`
//! to waive — recorded in the JSON): the sampler must save ≥30% of
//! ingest on both regimes, with zero boundary-counter drift on the
//! quiet regime, and detection on the session must survive sampling
//! (same windows flagged with and without the sampler).
//!
//! Knobs: `QI_BENCH_OUT=path.json` (default `BENCH_anomaly.json` at the
//! repository root), `QI_SMOKE=1` (smaller probe batch, fewer timing
//! samples), `QI_SKIP_ANOMALY_GATE=1`.

use std::time::Instant;

use qi_bench::is_smoke;
use qi_pfs::ids::DeviceId;
use qi_pfs::ops::ServerSample;
use qi_pfs::queue::DeviceCounters;
use qi_pfs::store::TraceStoreConfig;
use qi_simkit::time::{SimDuration, SimTime};
use quanterference::prelude::*;

/// The canonical anomaly-session scenario (mirrors
/// `anomaly_demo::session_scenario` in the root crate, which the bench
/// crate cannot depend on): smoke-scale target under steady background
/// interference, 100 ms server monitor, and — when `faulted` — every
/// OST slowed 7× plus an MDS lock storm.
fn session_scenario(seed: u64, faulted: bool) -> Scenario {
    let mut cluster = ClusterConfig::small();
    cluster.sample_interval = SimDuration::from_millis(100);
    let scenario = Scenario {
        cluster,
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, seed)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    if !faulted {
        return scenario;
    }
    let mut plan = FaultPlan::new().with(FaultEvent::MdsLockStorm {
        from: SimTime::ZERO,
        until: SimTime::ZERO + SimDuration::from_secs(40),
        revoke_factor: 4.0,
    });
    for dev in 0..scenario.cluster.n_osts() {
        plan = plan.with(FaultEvent::SlowDisk {
            dev,
            factor: 7.0,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(40),
        });
    }
    scenario.with_fault_plan(plan)
}

fn session_cfgs() -> (WindowConfig, FeatureConfig) {
    (
        WindowConfig::seconds(1),
        FeatureConfig {
            client: false,
            server: true,
        },
    )
}

/// Best-of-`samples` wall time of `f`, in milliseconds.
fn best_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("at least one sample"))
}

/// A quiet synthetic cluster: `n_dev` devices sampled every 100 ms for
/// `n_windows` one-second windows, each device active in only one
/// window out of five (staggered), idle — cumulative counters frozen —
/// everywhere else.
fn quiet_stream(n_dev: usize, n_windows: usize) -> Vec<ServerSample> {
    let mut cum = vec![DeviceCounters::default(); n_dev];
    let mut out = Vec::new();
    for w in 0..n_windows {
        for tick in 0..10u64 {
            let time = SimTime::ZERO + SimDuration::from_millis((w as u64 * 10 + tick + 1) * 100);
            for (d, c) in cum.iter_mut().enumerate() {
                if w % 5 == d % 5 {
                    c.writes_completed += 3;
                    c.sectors_written += 24;
                    c.busy_ns += 40_000_000;
                }
                out.push(ServerSample {
                    time,
                    dev: DeviceId(d as u32),
                    counters: *c,
                    dirty_bytes: 0,
                    throttled_now: 0,
                });
            }
        }
    }
    out
}

/// The window a sample belongs to (a sample on an exact boundary closes
/// the window ending there) — mirrors the sampler's grouping.
fn window_of(wcfg: WindowConfig, s: &ServerSample) -> u64 {
    let t = s.time.as_nanos();
    if t == 0 {
        0
    } else {
        wcfg.index_of(SimTime(t - 1))
    }
}

/// How many `(device, window)` boundary samples — the newest sample of
/// each group, whose cumulative counters the window features are
/// derived from — changed or vanished under sampling. Zero means the
/// sampler cannot have moved any window feature.
fn boundary_drift(wcfg: WindowConfig, raw: &[ServerSample], kept: &[ServerSample]) -> usize {
    let newest = |stream: &[ServerSample]| {
        let mut m = std::collections::HashMap::new();
        for s in stream {
            m.insert((s.dev.0, window_of(wcfg, s)), *s);
        }
        m
    };
    let want = newest(raw);
    let got = newest(kept);
    want.iter().filter(|(k, s)| got.get(k) != Some(s)).count()
}

struct SamplerRow {
    regime: &'static str,
    seen: u64,
    kept: u64,
    savings: f64,
    boundary_drift: Option<usize>,
}

fn main() {
    let small = is_smoke();
    let skip_gate = std::env::var("QI_SKIP_ANOMALY_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let samples = if small { 2 } else { 5 };
    let t0 = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    let (wcfg, fcfg) = session_cfgs();
    let n_devices = session_scenario(1, false).cluster.n_devices();

    // ------------------------------------------------------------ traces
    println!("running the anomaly-session scenarios...");
    let healthy_traces: Vec<RunTrace> = [1u64, 2, 3]
        .iter()
        .map(|&seed| session_scenario(seed, false).run().expect("healthy run").1)
        .collect();
    let (_, faulted_trace) = session_scenario(11, true).run().expect("faulted run");

    // -------------------------------------------------- score throughput
    let forest = ForestConfig {
        n_trees: 50,
        sample_size: 64,
        seed: 7,
    };
    let detector =
        AnomalyDetector::fit_healthy(forest, wcfg, fcfg, n_devices, &healthy_traces, 95.0);
    let rows: Vec<Vec<f32>> = healthy_traces
        .iter()
        .flat_map(|t| feature_rows(t, wcfg, fcfg, n_devices))
        .collect();
    let probe_n = if small { 20_000 } else { 100_000 };
    let probes: Vec<Vec<f32>> = (0..probe_n).map(|i| rows[i % rows.len()].clone()).collect();
    let (fit_ms, _) = best_ms(samples, || AnomalyScorer::fit_healthy(forest, &rows, 95.0));
    let (score_ms, scored) = best_ms(samples, || detector.scorer().forest().score_batch(&probes));
    assert_eq!(scored.len(), probe_n);
    let vectors_per_s = probe_n as f64 / (score_ms / 1e3);
    let us_per_vector = score_ms * 1e3 / probe_n as f64;
    println!(
        "score throughput: {probe_n} window-vectors in {score_ms:.1} ms \
         ({vectors_per_s:.0}/s, {us_per_vector:.2} us/vector; fit {fit_ms:.1} ms \
         on {} windows)",
        rows.len()
    );

    // ------------------------------------------------------------ sampler
    let mut sampler_rows: Vec<SamplerRow> = Vec::new();

    // Quiet regime: only quiet-window thinning, so ingest reduction must
    // come at zero boundary drift.
    let quiet = quiet_stream(8, if small { 60 } else { 240 });
    let (kept, stats) = AdaptiveSampler::run(
        SamplerConfig {
            budget: 8,
            quiet_keep: 1,
            seed: 9,
        },
        wcfg,
        quiet.clone(),
    );
    let drift = boundary_drift(wcfg, &quiet, &kept);
    sampler_rows.push(SamplerRow {
        regime: "quiet-synthetic",
        seen: stats.seen,
        kept: stats.kept,
        savings: stats.savings(),
        boundary_drift: Some(drift),
    });
    if stats.savings() < 0.30 {
        failures.push(format!(
            "quiet regime saved only {:.1}% of ingest (floor 30%)",
            stats.savings() * 100.0
        ));
    }
    if drift != 0 {
        failures.push(format!(
            "quiet regime drifted {drift} (device, window) boundary counters"
        ));
    }

    // Session regime: the faulted run behind the session's budget — the
    // savings the golden and the differential suite pin.
    let plain = detector.analyze(&faulted_trace);
    let sampled = detector
        .clone()
        .with_sampler(SamplerConfig {
            budget: 4,
            quiet_keep: 1,
            seed: 9,
        })
        .analyze(&faulted_trace);
    let sstats = sampled.sampler.expect("sampled report carries stats");
    sampler_rows.push(SamplerRow {
        regime: "session-faulted",
        seen: sstats.seen,
        kept: sstats.kept,
        savings: sstats.savings(),
        boundary_drift: None,
    });
    if sstats.savings() < 0.30 {
        failures.push(format!(
            "session regime saved only {:.1}% of ingest (floor 30%)",
            sstats.savings() * 100.0
        ));
    }
    let plain_flagged: Vec<u64> = plain.flagged().map(|ws| ws.window).collect();
    let sampled_flagged: Vec<u64> = sampled.flagged().map(|ws| ws.window).collect();
    if plain_flagged != sampled_flagged {
        failures.push(format!(
            "sampling changed the flagged set: {plain_flagged:?} vs {sampled_flagged:?}"
        ));
    }
    for r in &sampler_rows {
        println!(
            "sampler [{}]: {} -> {} samples ({:.1}% saved{})",
            r.regime,
            r.seen,
            r.kept,
            r.savings * 100.0,
            r.boundary_drift
                .map(|d| format!(", boundary drift {d}"))
                .unwrap_or_default(),
        );
    }

    // ---------------------------------------------------- ring memory
    let run_with_store = |store: TraceStoreConfig| {
        let mut scn = session_scenario(11, true);
        scn.cluster.trace_store = store;
        scn.run().expect("store-backed run").1
    };
    let unbounded = run_with_store(TraceStoreConfig::Unbounded);
    let ring = run_with_store(TraceStoreConfig::RleRing { capacity: 4096 });
    let tight = run_with_store(TraceStoreConfig::RleRing { capacity: 64 });
    assert_eq!(ring.samples.to_vec(), unbounded.samples.to_vec());
    let n = unbounded.samples.len();
    let cell_ratio = ring.samples.storage_cells() as f64 / n.max(1) as f64;
    println!(
        "ring memory: {} samples; unbounded ~{} B; rle ring {} cells ~{} B \
         ({:.2}x cells); tight ring held {} / evicted {}",
        n,
        unbounded.samples.approx_bytes(),
        ring.samples.storage_cells(),
        ring.samples.approx_bytes(),
        cell_ratio,
        tight.samples.len(),
        tight.samples.evicted(),
    );

    // --------------------------------------------------------------- JSON
    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_anomaly.json")
        },
        std::path::PathBuf::from,
    );
    let passed = failures.is_empty();
    let mut s = String::from("{\n");
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench anomaly_scale\",\n");
    s.push_str(&format!(
        "  \"gate\": {{\"basis\": \"sampler saves >=30% ingest on both regimes, zero \
         boundary drift on the quiet regime, flagged set unchanged\", \
         \"enforced\": {}, \"passed\": {passed}}},\n",
        !skip_gate
    ));
    s.push_str(&format!(
        "  \"score_throughput\": {{\"training_windows\": {}, \"probe_vectors\": {probe_n}, \
         \"fit_ms\": {fit_ms:.3}, \"score_ms\": {score_ms:.3}, \
         \"vectors_per_s\": {vectors_per_s:.0}, \"us_per_vector\": {us_per_vector:.3}, \
         \"n_trees\": {}, \"sample_size\": {}}},\n",
        rows.len(),
        forest.n_trees,
        forest.sample_size,
    ));
    s.push_str("  \"sampler\": [\n");
    for (i, r) in sampler_rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"regime\": \"{}\", \"seen\": {}, \"kept\": {}, \"savings\": {:.4}, \
             \"boundary_drift\": {}}}{}\n",
            r.regime,
            r.seen,
            r.kept,
            r.savings,
            r.boundary_drift
                .map(|d| d.to_string())
                .unwrap_or_else(|| "null".into()),
            if i + 1 < sampler_rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"ring\": {{\"samples\": {n}, \"unbounded_bytes\": {}, \"ring_cells\": {}, \
         \"ring_bytes\": {}, \"cell_ratio\": {cell_ratio:.4}, \"tight_capacity\": 64, \
         \"tight_held\": {}, \"tight_evicted\": {}}}\n",
        unbounded.samples.approx_bytes(),
        ring.samples.storage_cells(),
        ring.samples.approx_bytes(),
        tight.samples.len(),
        tight.samples.evicted(),
    ));
    s.push_str("}\n");
    std::fs::write(&out, s).expect("write BENCH_anomaly.json");
    println!("generated in {:.1?}; JSON: {}", t0.elapsed(), out.display());

    if !passed {
        for f in &failures {
            eprintln!("anomaly gate: {f}");
        }
        if !skip_gate {
            panic!(
                "anomaly gate failed ({} violation(s)); set QI_SKIP_ANOMALY_GATE=1 to waive",
                failures.len()
            );
        }
        eprintln!("QI_SKIP_ANOMALY_GATE=1: gate waived (recorded in the JSON)");
    }
}
