//! **Figure 3** — binary interference prediction on the benchmark
//! datasets: (a) a model trained and tested on IO500 windows, (b) one on
//! DLIO windows. The paper reports large true-positive/true-negative
//! mass and F1 > 90% on both; IO500 is positive-skewed (~75% ≥2x) while
//! DLIO is negative-skewed (~20% ≥2x).

use qi_bench::{is_smoke, print_report, report_table, results_dir, summary_table};
use quanterference::predict::{family_spec, train_and_evaluate};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let tcfg = TrainConfig {
        epochs: if small { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();

    let io500_spec = family_spec(&WorkloadKind::IO500, small);
    println!(
        "Figure 3(a): training on the IO500 grid ({} runs)...",
        io500_spec.n_runs()
    );
    let (io500_gen, _, io500_report) =
        train_and_evaluate(&io500_spec, &tcfg, 42).expect("io500 pipeline");
    print_report("Fig. 3(a) — binary model, IO500", &io500_gen, &io500_report);

    let dlio_spec = family_spec(&WorkloadKind::DLIO, small);
    println!(
        "Figure 3(b): training on the DLIO grid ({} runs)...",
        dlio_spec.n_runs()
    );
    let (dlio_gen, _, dlio_report) =
        train_and_evaluate(&dlio_spec, &tcfg, 42).expect("dlio pipeline");
    print_report("Fig. 3(b) — binary model, DLIO", &dlio_gen, &dlio_report);

    println!("paper-vs-measured:");
    println!(
        "  IO500: paper F1 > 0.90; measured {:.3}",
        io500_report.headline_f1()
    );
    println!(
        "  DLIO:  paper F1 > 0.90; measured {:.3}",
        dlio_report.headline_f1()
    );
    let io500_pos = io500_gen.class_counts()[1] as f64 / io500_gen.data.len() as f64;
    let dlio_pos = dlio_gen.class_counts()[1] as f64 / dlio_gen.data.len() as f64;
    println!(
        "  class skew: IO500 {:.0}% positive (paper ~75%), DLIO {:.0}% positive (paper ~20%)",
        io500_pos * 100.0,
        dlio_pos * 100.0
    );

    let dir = results_dir();
    report_table("io500-binary", &io500_report)
        .write_csv(dir.join("fig3a_io500_confusion.csv"))
        .expect("write CSV");
    report_table("dlio-binary", &dlio_report)
        .write_csv(dir.join("fig3b_dlio_confusion.csv"))
        .expect("write CSV");
    summary_table(&[
        ("io500-binary", &io500_report),
        ("dlio-binary", &dlio_report),
    ])
    .write_csv(dir.join("fig3_summary.csv"))
    .expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSVs under {}",
        t0.elapsed(),
        dir.display()
    );
}
