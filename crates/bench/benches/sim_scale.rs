//! **Simulator-core scaling bench** (DESIGN.md — simulator core).
//!
//! Two curves, written to `BENCH_sim.json` at the repository root:
//!
//! 1. `queue_churn` — the hold model on a bare `EventQueue`: seed
//!    `64 × n_nodes` pending events (the cluster's steady-state
//!    high-water mark at each scale), then pop one / schedule one at
//!    `now + Δ`, with Δ drawn from a deterministic mix of RPC-scale
//!    (1–100 µs), disk-scale (0.1–10 ms), and sampler-scale (~1 s)
//!    horizons. Run for the calendar and binary-heap backends at
//!    4/8/16/32-OSS cluster sizes (16 clients per OSS); report
//!    events/second.
//! 2. `cluster_events_per_sec` — a real end-to-end simulation (every
//!    client streaming 1 MiB writes) at the same OSS scales, measuring
//!    delivered events/second from [`RunTrace::events_processed`].
//!
//! **Throughput gate:** at the 32-OSS point the calendar backend must
//! sustain ≥ 3× the heap backend's churn throughput, compared on
//! best-sample times (the workload is deterministic, so scheduler noise
//! is strictly additive and the best sample is the cleanest estimate).
//! The gate fails the bench (non-zero exit) unless `QI_SKIP_SIM_GATE=1`
//! — the escape hatch for single-CPU or heavily loaded containers where
//! even best-of-N timing is noise.
//!
//! Knobs: `QI_BENCH_OUT=path.json`, `QI_BENCH_QUICK=1` / `QI_SMOKE=1`
//! (smaller grid and step counts), `QI_SKIP_SIM_GATE=1`.

use std::time::Duration;

use criterion::Criterion;
use qi_bench::is_smoke;
use qi_pfs::prelude::*;
use qi_simkit::event::EventQueue;
use qi_simkit::time::SimTime;
use qi_simkit::QueueBackend;

/// OSS counts of the scaling curve (clients scale with them).
const OSS_GRID: [u32; 4] = [4, 8, 16, 32];
/// The gated point and its required calendar-vs-heap speedup.
const GATE_OSS: u32 = 32;
const GATE_SPEEDUP: f64 = 3.0;

/// Backends the curve compares. `Reference` is deliberately absent: the
/// sorted-Vec double exists for correctness cross-checks, not racing.
const BACKENDS: [QueueBackend; 2] = [QueueBackend::Calendar, QueueBackend::Heap];

fn backend_label(b: QueueBackend) -> &'static str {
    match b {
        QueueBackend::Calendar => "calendar",
        QueueBackend::Heap => "heap",
        QueueBackend::Reference => "reference",
    }
}

/// xorshift64*: deterministic, dependency-free delta source.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Draw one scheduling delta (ns) from the cluster-shaped mix: mostly
/// RPC/CPU horizons, a band of disk-service horizons, a thin tail of
/// sampler-scale timers.
fn delta_ns(state: &mut u64) -> u64 {
    let r = next_rand(state);
    let pick = r % 100;
    let spread = next_rand(state);
    if pick < 70 {
        1_000 + spread % 99_000 // 1–100 µs
    } else if pick < 95 {
        100_000 + spread % 9_900_000 // 0.1–10 ms
    } else {
        900_000_000 + spread % 200_000_000 // ~1 s
    }
}

/// ~32-byte payload, stand-in for a small `Ev` variant.
type Payload = [u64; 4];

/// Number of clients at an OSS count (the churn model's node scale).
fn n_nodes(oss: u32) -> usize {
    (16 * oss + oss + 1) as usize
}

/// Build a queue pre-loaded to the hold level for `oss`.
fn seeded_queue(backend: QueueBackend, oss: u32) -> (EventQueue<Payload>, u64) {
    let pending = 64 * n_nodes(oss);
    let mut q = EventQueue::with_capacity_and_backend(pending, backend);
    let mut state = 0x51_u64.wrapping_add(oss as u64) | 1;
    for i in 0..pending {
        let at = SimTime::ZERO + qi_simkit::time::SimDuration::from_nanos(delta_ns(&mut state));
        q.schedule(at, [i as u64; 4]);
    }
    (q, state)
}

/// One hold-model step: pop the earliest event, schedule a replacement.
fn churn(q: &mut EventQueue<Payload>, state: &mut u64, steps: usize) {
    for _ in 0..steps {
        let (_, ev) = q.pop().expect("hold model never drains");
        let at = q.now() + qi_simkit::time::SimDuration::from_nanos(delta_ns(state));
        q.schedule(at, ev);
    }
}

/// A cluster where every client streams 1 MiB writes to its own file.
fn streaming_cluster(backend: QueueBackend, oss: u32, mib_per_client: u64) -> Cluster {
    let cfg = ClusterConfig {
        oss_nodes: oss,
        osts_per_oss: 1,
        client_nodes: 2 * oss,
        event_queue: backend,
        ..ClusterConfig::default()
    };
    let clients = cfg.client_nodes;
    let mut cl = Cluster::builder()
        .config(cfg)
        .seed(7)
        .build()
        .expect("valid scaling config");
    for c in 0..clients {
        let file = FileKey {
            app: AppId(c),
            num: 1,
        };
        let mut left = mib_per_client;
        let prog = move |_now: SimTime| {
            if left == 0 {
                return ProgramStep::Finished;
            }
            left -= 1;
            ProgramStep::Op(IoOp::Write {
                file,
                offset: (mib_per_client - left - 1) * 1024 * 1024,
                len: 1024 * 1024,
            })
        };
        cl.add_app(&format!("w{c}"), vec![Box::new(prog)], &[NodeId(c)]);
    }
    cl
}

struct Row {
    kind: &'static str,
    backend: &'static str,
    oss: u32,
    median_ms: f64,
    events_per_sec: f64,
}

fn write_json(rows: &[Row], gate: (f64, bool, bool), out: &std::path::Path) {
    let (speedup, enforced, passed) = gate;
    let mut s = String::from("{\n");
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench sim_scale\",\n");
    s.push_str(&format!(
        "  \"gate\": {{\"point_oss\": {GATE_OSS}, \"required_speedup\": {GATE_SPEEDUP:.1}, \
         \"measured_speedup\": {speedup:.3}, \"basis\": \"best_sample\", \
         \"enforced\": {enforced}, \"passed\": {passed}}},\n"
    ));
    s.push_str("  \"curves\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"backend\": \"{}\", \"oss\": {}, \"median_ms\": {:.3}, \
             \"events_per_sec\": {:.0}}}{}\n",
            r.kind,
            r.backend,
            r.oss,
            r.median_ms,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_sim.json");
}

fn main() {
    let quick = is_smoke()
        || std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let skip_gate = std::env::var("QI_SKIP_SIM_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let grid: Vec<u32> = if quick {
        OSS_GRID.iter().copied().filter(|&o| o >= 8).collect()
    } else {
        OSS_GRID.to_vec()
    };
    let churn_steps = if quick { 50_000 } else { 200_000 };
    let samples = if quick { 3 } else { 5 };
    let mib_per_client = if quick { 4 } else { 8 };

    println!("sim_scale: OSS grid {grid:?}, {churn_steps} churn steps/iter");

    let mut c = Criterion::default()
        .with_budget(Duration::ZERO, Duration::ZERO)
        .min_samples(samples);

    // Curve 1: bare-queue hold model.
    for &oss in &grid {
        for backend in BACKENDS {
            let (mut q, mut state) = seeded_queue(backend, oss);
            let name = format!("queue_churn/{}/{}oss", backend_label(backend), oss);
            c.bench_function(&name, |bench| {
                bench.iter(|| churn(&mut q, &mut state, churn_steps))
            });
        }
    }

    // Curve 2: end-to-end cluster events/second. The workload is fixed
    // per scale, so events_processed is backend-independent (asserted);
    // only wall time varies.
    let mut cluster_events: Vec<(u32, u64)> = Vec::new();
    for &oss in &grid {
        let mut processed: Option<u64> = None;
        for backend in BACKENDS {
            let name = format!("cluster_run/{}/{}oss", backend_label(backend), oss);
            let mut last = 0u64;
            c.bench_function(&name, |bench| {
                bench.iter(|| {
                    let cl = streaming_cluster(backend, oss, mib_per_client);
                    let trace = cl.run(SimTime::from_secs(120));
                    last = trace.events_processed;
                    last
                })
            });
            match processed {
                None => processed = Some(last),
                Some(p) => assert_eq!(p, last, "event count diverged across backends"),
            }
        }
        cluster_events.push((oss, processed.unwrap_or(0)));
    }

    let stats = c.results();
    let median_of = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ms())
            .expect("bench ran")
    };
    // Best (p05 ≈ min at these sample counts) wall time. The churn
    // workload is deterministic, so its true cost is a constant and
    // scheduler noise is strictly additive — the best sample is the
    // least-contaminated estimate, which is what the gate compares on
    // single-CPU/shared machines where medians swing 2–3×.
    let best_of = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.p05_ns / 1e6)
            .expect("bench ran")
    };

    let mut rows = Vec::new();
    for &oss in &grid {
        for backend in BACKENDS {
            let label = backend_label(backend);
            let m = median_of(&format!("queue_churn/{label}/{oss}oss"));
            rows.push(Row {
                kind: "queue_churn",
                backend: label,
                oss,
                median_ms: m,
                events_per_sec: churn_steps as f64 / (m / 1e3),
            });
        }
    }
    for &(oss, events) in &cluster_events {
        for backend in BACKENDS {
            let label = backend_label(backend);
            let m = median_of(&format!("cluster_run/{label}/{oss}oss"));
            rows.push(Row {
                kind: "cluster_run",
                backend: label,
                oss,
                median_ms: m,
                events_per_sec: events as f64 / (m / 1e3),
            });
        }
    }

    // Gate: calendar ≥ 3× heap churn throughput at the 32-OSS point
    // (or at the largest point the quick grid ran).
    let gate_oss = if grid.contains(&GATE_OSS) {
        GATE_OSS
    } else {
        *grid.last().expect("non-empty grid")
    };
    let cal = best_of(&format!("queue_churn/calendar/{gate_oss}oss"));
    let heap = best_of(&format!("queue_churn/heap/{gate_oss}oss"));
    let speedup = heap / cal;
    let passed = speedup >= GATE_SPEEDUP;
    println!(
        "gate @ {gate_oss} OSS (best-sample): calendar {cal:.3} ms vs heap {heap:.3} ms → {speedup:.2}×"
    );

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_sim.json")
        },
        std::path::PathBuf::from,
    );
    write_json(&rows, (speedup, !skip_gate, passed), &out);
    println!("wrote {}", out.display());

    if !passed && !skip_gate {
        panic!(
            "throughput gate failed: calendar is {speedup:.2}× heap at {gate_oss} OSS \
             (need ≥ {GATE_SPEEDUP}×); set QI_SKIP_SIM_GATE=1 to waive on constrained machines"
        );
    }
}
