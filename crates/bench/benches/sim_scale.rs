//! **Simulator-core scaling bench** (DESIGN.md — simulator core).
//!
//! Two curves, written to `BENCH_sim.json` at the repository root:
//!
//! 1. `queue_churn` — the hold model on a bare `EventQueue`: seed
//!    `64 × n_nodes` pending events (the cluster's steady-state
//!    high-water mark at each scale), then pop one / schedule one at
//!    `now + Δ`, with Δ drawn from a deterministic mix of RPC-scale
//!    (1–100 µs), disk-scale (0.1–10 ms), and sampler-scale (~1 s)
//!    horizons. Run for the calendar and binary-heap backends at
//!    4/8/16/32-OSS cluster sizes (16 clients per OSS); report
//!    events/second.
//! 2. `cluster_events_per_sec` — a real end-to-end simulation (every
//!    client streaming 1 MiB writes) at the same OSS scales, measuring
//!    delivered events/second from [`RunTrace::events_processed`].
//! 3. `cluster_run_sharded` — the parallel-simulator shard sweep
//!    (DESIGN.md — parallel simulation): a dense staggered-write run at
//!    the largest grid point, at `sim_shards` 1/2/4/8, timed both on a
//!    single-thread rayon pool (the overhead gate point) and on the
//!    ambient pool (the scaling curve).
//!
//! **Throughput gate:** at the 32-OSS point the calendar backend must
//! sustain ≥ 3× the heap backend's churn throughput, compared on
//! best-sample times (the workload is deterministic, so scheduler noise
//! is strictly additive and the best sample is the cleanest estimate).
//! The gate fails the bench (non-zero exit) unless `QI_SKIP_SIM_GATE=1`
//! — the escape hatch for single-CPU or heavily loaded containers where
//! even best-of-N timing is noise.
//!
//! **Parallel-simulation gate:** every sharded run must leave the
//! observable trace (ops, RPCs, samples, end time, telemetry JSON)
//! bit-identical to the one-shard run — never waived — and on a
//! one-thread pool the sharded runs must cost at most 10% more wall
//! time than the sequential run, best-sample basis
//! (`QI_SKIP_PARSIM_GATE=1` waives the overhead bound only).
//!
//! Knobs: `QI_BENCH_OUT=path.json`, `QI_BENCH_QUICK=1` / `QI_SMOKE=1`
//! (smaller grid and step counts), `QI_SKIP_SIM_GATE=1`,
//! `QI_SKIP_PARSIM_GATE=1`.

use std::time::Duration;

use criterion::Criterion;
use qi_bench::is_smoke;
use qi_pfs::prelude::*;
use qi_simkit::event::EventQueue;
use qi_simkit::time::SimTime;
use qi_simkit::QueueBackend;

/// OSS counts of the scaling curve (clients scale with them).
const OSS_GRID: [u32; 4] = [4, 8, 16, 32];
/// The gated point and its required calendar-vs-heap speedup.
const GATE_OSS: u32 = 32;
const GATE_SPEEDUP: f64 = 3.0;
/// Shard counts of the parallel sweep and the one-thread overhead bound.
const SHARD_GRID: [u32; 4] = [1, 2, 4, 8];
const PARSIM_MAX_OVERHEAD_PCT: f64 = 10.0;

/// Backends the curve compares. `Reference` is deliberately absent: the
/// sorted-Vec double exists for correctness cross-checks, not racing.
const BACKENDS: [QueueBackend; 2] = [QueueBackend::Calendar, QueueBackend::Heap];

fn backend_label(b: QueueBackend) -> &'static str {
    match b {
        QueueBackend::Calendar => "calendar",
        QueueBackend::Heap => "heap",
        QueueBackend::Reference => "reference",
    }
}

/// xorshift64*: deterministic, dependency-free delta source.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Draw one scheduling delta (ns) from the cluster-shaped mix: mostly
/// RPC/CPU horizons, a band of disk-service horizons, a thin tail of
/// sampler-scale timers.
fn delta_ns(state: &mut u64) -> u64 {
    let r = next_rand(state);
    let pick = r % 100;
    let spread = next_rand(state);
    if pick < 70 {
        1_000 + spread % 99_000 // 1–100 µs
    } else if pick < 95 {
        100_000 + spread % 9_900_000 // 0.1–10 ms
    } else {
        900_000_000 + spread % 200_000_000 // ~1 s
    }
}

/// ~32-byte payload, stand-in for a small `Ev` variant.
type Payload = [u64; 4];

/// Number of clients at an OSS count (the churn model's node scale).
fn n_nodes(oss: u32) -> usize {
    (16 * oss + oss + 1) as usize
}

/// Build a queue pre-loaded to the hold level for `oss`.
fn seeded_queue(backend: QueueBackend, oss: u32) -> (EventQueue<Payload>, u64) {
    let pending = 64 * n_nodes(oss);
    let mut q = EventQueue::with_capacity_and_backend(pending, backend);
    let mut state = 0x51_u64.wrapping_add(oss as u64) | 1;
    for i in 0..pending {
        let at = SimTime::ZERO + qi_simkit::time::SimDuration::from_nanos(delta_ns(&mut state));
        q.schedule(at, [i as u64; 4]);
    }
    (q, state)
}

/// One hold-model step: pop the earliest event, schedule a replacement.
fn churn(q: &mut EventQueue<Payload>, state: &mut u64, steps: usize) {
    for _ in 0..steps {
        let (_, ev) = q.pop().expect("hold model never drains");
        let at = q.now() + qi_simkit::time::SimDuration::from_nanos(delta_ns(state));
        q.schedule(at, ev);
    }
}

/// A cluster where every client streams 1 MiB writes to its own file.
fn streaming_cluster(backend: QueueBackend, oss: u32, mib_per_client: u64) -> Cluster {
    let cfg = ClusterConfig {
        oss_nodes: oss,
        osts_per_oss: 1,
        client_nodes: 2 * oss,
        event_queue: backend,
        ..ClusterConfig::default()
    };
    let clients = cfg.client_nodes;
    let mut cl = Cluster::builder()
        .config(cfg)
        .seed(7)
        .build()
        .expect("valid scaling config");
    for c in 0..clients {
        let file = FileKey {
            app: AppId(c),
            num: 1,
        };
        let mut left = mib_per_client;
        let prog = move |_now: SimTime| {
            if left == 0 {
                return ProgramStep::Finished;
            }
            left -= 1;
            ProgramStep::Op(IoOp::Write {
                file,
                offset: (mib_per_client - left - 1) * 1024 * 1024,
                len: 1024 * 1024,
            })
        };
        cl.add_app(&format!("w{c}"), vec![Box::new(prog)], &[NodeId(c)]);
    }
    cl
}

/// The shard-sweep workload: like `streaming_cluster` but denser (more
/// data, short deadline — no idle sampler tail) and with each client's
/// start staggered by a distinct sub-RPC delay. The stagger breaks the
/// perfect client symmetry of the streaming workload, which otherwise
/// completes whole cohorts of ops at identical instants — and record
/// order *within* one instant is the one surface the parallel merge
/// does not reproduce (DESIGN.md, parallel simulation, residual ties).
fn sharded_cluster(shards: u32, oss: u32, mib_per_client: u64) -> Cluster {
    let cfg = ClusterConfig {
        oss_nodes: oss,
        osts_per_oss: 1,
        client_nodes: 2 * oss,
        sim_shards: shards,
        ..ClusterConfig::default()
    };
    let clients = cfg.client_nodes;
    let mut cl = Cluster::builder()
        .config(cfg)
        .seed(7)
        .build()
        .expect("valid shard-sweep config");
    for c in 0..clients {
        let file = FileKey {
            app: AppId(c),
            num: 1,
        };
        let mut left = mib_per_client;
        let mut started = false;
        let prog = move |_now: SimTime| {
            if !started {
                started = true;
                let stagger = qi_simkit::time::SimDuration::from_nanos(1_300 * c as u64 + 1);
                return ProgramStep::Compute(stagger);
            }
            if left == 0 {
                return ProgramStep::Finished;
            }
            left -= 1;
            ProgramStep::Op(IoOp::Write {
                file,
                offset: (mib_per_client - left - 1) * 1024 * 1024,
                len: 1024 * 1024,
            })
        };
        cl.add_app(&format!("w{c}"), vec![Box::new(prog)], &[NodeId(c)]);
    }
    cl
}

/// Bit equality of everything a run observes. `events_processed` is
/// deliberately absent: shard counts differ in bookkeeping events (one
/// sampler chain per shard) while every observable stays identical.
fn assert_observably_identical(a: &RunTrace, b: &RunTrace, ctx: &str) {
    assert_eq!(a.ops, b.ops, "{ctx}: op records diverged");
    assert_eq!(a.rpcs, b.rpcs, "{ctx}: rpc records diverged");
    assert_eq!(a.samples, b.samples, "{ctx}: server samples diverged");
    assert_eq!(a.app_completion, b.app_completion, "{ctx}: completions");
    assert_eq!(a.failed_ops, b.failed_ops, "{ctx}: failed ops diverged");
    assert_eq!(a.end, b.end, "{ctx}: end time diverged");
    assert_eq!(
        a.metrics.to_json(),
        b.metrics.to_json(),
        "{ctx}: telemetry JSON diverged"
    );
}

struct Row {
    kind: &'static str,
    backend: &'static str,
    oss: u32,
    shards: u32,
    median_ms: f64,
    events_per_sec: f64,
}

fn write_json(
    rows: &[Row],
    gate: (f64, bool, bool),
    parsim: (u32, f64, bool, bool, &str),
    out: &std::path::Path,
) {
    let (speedup, enforced, passed) = gate;
    let (sweep_oss, overhead, p_enforced, p_passed, determinism) = parsim;
    let mut s = String::from("{\n");
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench sim_scale\",\n");
    s.push_str(&format!(
        "  \"gate\": {{\"point_oss\": {GATE_OSS}, \"required_speedup\": {GATE_SPEEDUP:.1}, \
         \"measured_speedup\": {speedup:.3}, \"basis\": \"best_sample\", \
         \"enforced\": {enforced}, \"passed\": {passed}}},\n"
    ));
    s.push_str(&format!(
        "  \"parsim_gate\": {{\"point_oss\": {sweep_oss}, \"threads\": 1, \
         \"max_overhead_pct\": {PARSIM_MAX_OVERHEAD_PCT:.1}, \
         \"worst_overhead_pct\": {overhead:.2}, \"basis\": \"best_sample\", \
         \"determinism\": \"{determinism}\", \"enforced\": {p_enforced}, \"passed\": {p_passed}}},\n"
    ));
    s.push_str("  \"curves\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kind\": \"{}\", \"backend\": \"{}\", \"oss\": {}, \"shards\": {}, \
             \"median_ms\": {:.3}, \"events_per_sec\": {:.0}}}{}\n",
            r.kind,
            r.backend,
            r.oss,
            r.shards,
            r.median_ms,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_sim.json");
}

fn main() {
    let quick = is_smoke()
        || std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
    let skip_gate = std::env::var("QI_SKIP_SIM_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let skip_parsim_gate = std::env::var("QI_SKIP_PARSIM_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let skip_parsim = std::env::var("QI_SKIP_PARSIM")
        .map(|v| v == "1")
        .unwrap_or(false);
    let grid: Vec<u32> = if quick {
        OSS_GRID.iter().copied().filter(|&o| o >= 8).collect()
    } else {
        OSS_GRID.to_vec()
    };
    let churn_steps = if quick { 50_000 } else { 200_000 };
    let samples = if quick { 3 } else { 5 };
    let mib_per_client = if quick { 4 } else { 8 };

    println!("sim_scale: OSS grid {grid:?}, {churn_steps} churn steps/iter");

    let mut c = Criterion::default()
        .with_budget(Duration::ZERO, Duration::ZERO)
        .min_samples(samples);

    // Curve 1: bare-queue hold model.
    for &oss in &grid {
        for backend in BACKENDS {
            let (mut q, mut state) = seeded_queue(backend, oss);
            let name = format!("queue_churn/{}/{}oss", backend_label(backend), oss);
            c.bench_function(&name, |bench| {
                bench.iter(|| churn(&mut q, &mut state, churn_steps))
            });
        }
    }

    // Curve 2: end-to-end cluster events/second. The workload is fixed
    // per scale, so events_processed is backend-independent (asserted);
    // only wall time varies.
    let mut cluster_events: Vec<(u32, u64)> = Vec::new();
    for &oss in &grid {
        let mut processed: Option<u64> = None;
        for backend in BACKENDS {
            let name = format!("cluster_run/{}/{}oss", backend_label(backend), oss);
            let mut last = 0u64;
            c.bench_function(&name, |bench| {
                bench.iter(|| {
                    let cl = streaming_cluster(backend, oss, mib_per_client);
                    let trace = cl.run(SimTime::from_secs(120));
                    last = trace.events_processed;
                    last
                })
            });
            match processed {
                None => processed = Some(last),
                Some(p) => assert_eq!(p, last, "event count diverged across backends"),
            }
        }
        cluster_events.push((oss, processed.unwrap_or(0)));
    }

    // Curve 3: the parallel shard sweep at the largest grid point. The
    // determinism leg runs first and is never waived: every shard count
    // must reproduce the sequential run's observables bit-for-bit.
    let sweep_oss = *grid.last().expect("non-empty grid");
    let shard_grid: Vec<u32> = if skip_parsim {
        Vec::new()
    } else {
        SHARD_GRID.into_iter().filter(|&s| s <= sweep_oss).collect()
    };
    let sweep_mib = if quick { 16 } else { 64 };
    let sweep_deadline = SimTime::from_secs(10);
    let mut sweep_events: Vec<(u32, u64)> = Vec::new();
    let mut sweep_golden: Option<RunTrace> = None;
    for &shards in &shard_grid {
        let trace = sharded_cluster(shards, sweep_oss, sweep_mib).run(sweep_deadline);
        match &sweep_golden {
            None => sweep_golden = Some(trace),
            Some(golden) => {
                assert_observably_identical(
                    golden,
                    &trace,
                    &format!("{shards} shards vs sequential @ {sweep_oss} OSS"),
                );
                sweep_events.push((shards, trace.events_processed));
            }
        }
    }
    if let Some(golden) = &sweep_golden {
        sweep_events.insert(0, (1, golden.events_processed));
        println!(
            "shard sweep @ {sweep_oss} OSS: observables bit-identical at {shard_grid:?} shards"
        );
    } else {
        println!("shard sweep skipped (QI_SKIP_PARSIM=1)");
    }

    for &shards in &shard_grid {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("one-thread pool builds");
        let name = format!("cluster_shards/{shards}shards/1t");
        c.bench_function(&name, |bench| {
            bench.iter(|| {
                pool.install(|| {
                    sharded_cluster(shards, sweep_oss, sweep_mib)
                        .run(sweep_deadline)
                        .events_processed
                })
            })
        });
        let name = format!("cluster_shards/{shards}shards/ambient");
        c.bench_function(&name, |bench| {
            bench.iter(|| {
                sharded_cluster(shards, sweep_oss, sweep_mib)
                    .run(sweep_deadline)
                    .events_processed
            })
        });
    }

    let stats = c.results();
    let median_of = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ms())
            .expect("bench ran")
    };
    // Best (p05 ≈ min at these sample counts) wall time. The churn
    // workload is deterministic, so its true cost is a constant and
    // scheduler noise is strictly additive — the best sample is the
    // least-contaminated estimate, which is what the gate compares on
    // single-CPU/shared machines where medians swing 2–3×.
    let best_of = |name: &str| {
        stats
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.p05_ns / 1e6)
            .expect("bench ran")
    };

    let mut rows = Vec::new();
    for &oss in &grid {
        for backend in BACKENDS {
            let label = backend_label(backend);
            let m = median_of(&format!("queue_churn/{label}/{oss}oss"));
            rows.push(Row {
                kind: "queue_churn",
                backend: label,
                oss,
                shards: 1,
                median_ms: m,
                events_per_sec: churn_steps as f64 / (m / 1e3),
            });
        }
    }
    for &(oss, events) in &cluster_events {
        for backend in BACKENDS {
            let label = backend_label(backend);
            let m = median_of(&format!("cluster_run/{label}/{oss}oss"));
            rows.push(Row {
                kind: "cluster_run",
                backend: label,
                oss,
                shards: 1,
                median_ms: m,
                events_per_sec: events as f64 / (m / 1e3),
            });
        }
    }
    for &(shards, events) in &sweep_events {
        for (kind, pool) in [
            ("cluster_run_sharded_1t", "1t"),
            ("cluster_run_sharded", "ambient"),
        ] {
            let m = median_of(&format!("cluster_shards/{shards}shards/{pool}"));
            rows.push(Row {
                kind,
                backend: "calendar",
                oss: sweep_oss,
                shards,
                median_ms: m,
                events_per_sec: events as f64 / (m / 1e3),
            });
        }
    }

    // Gate: calendar ≥ 3× heap churn throughput at the 32-OSS point
    // (or at the largest point the quick grid ran).
    let gate_oss = if grid.contains(&GATE_OSS) {
        GATE_OSS
    } else {
        *grid.last().expect("non-empty grid")
    };
    let cal = best_of(&format!("queue_churn/calendar/{gate_oss}oss"));
    let heap = best_of(&format!("queue_churn/heap/{gate_oss}oss"));
    let speedup = heap / cal;
    let passed = speedup >= GATE_SPEEDUP;
    println!(
        "gate @ {gate_oss} OSS (best-sample): calendar {cal:.3} ms vs heap {heap:.3} ms → {speedup:.2}×"
    );

    // Parallel-simulation gate: sharded runs on a one-thread pool must
    // stay within the overhead bound of the sequential run.
    let mut worst_overhead = 0.0f64;
    if !skip_parsim {
        let seq_1t = best_of("cluster_shards/1shards/1t");
        for &shards in shard_grid.iter().filter(|&&s| s > 1) {
            let t = best_of(&format!("cluster_shards/{shards}shards/1t"));
            let overhead = (t / seq_1t - 1.0) * 100.0;
            println!(
                "parsim @ {shards} shards, 1 thread (best-sample): {t:.3} ms vs sequential \
                 {seq_1t:.3} ms → {overhead:+.1}%"
            );
            worst_overhead = worst_overhead.max(overhead);
        }
    }
    let parsim_passed = worst_overhead <= PARSIM_MAX_OVERHEAD_PCT;

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_sim.json")
        },
        std::path::PathBuf::from,
    );
    write_json(
        &rows,
        (speedup, !skip_gate, passed),
        (
            sweep_oss,
            worst_overhead,
            !skip_parsim_gate && !skip_parsim,
            parsim_passed,
            if skip_parsim { "skipped" } else { "passed" },
        ),
        &out,
    );
    println!("wrote {}", out.display());

    if !passed && !skip_gate {
        panic!(
            "throughput gate failed: calendar is {speedup:.2}× heap at {gate_oss} OSS \
             (need ≥ {GATE_SPEEDUP}×); set QI_SKIP_SIM_GATE=1 to waive on constrained machines"
        );
    }
    if !parsim_passed && !skip_parsim_gate {
        panic!(
            "parallel-simulation overhead gate failed: worst sharded run is \
             {worst_overhead:+.1}% vs sequential at 1 thread (bound \
             {PARSIM_MAX_OVERHEAD_PCT}%); set QI_SKIP_PARSIM_GATE=1 to waive \
             on constrained machines — determinism is asserted regardless"
        );
    }
}
