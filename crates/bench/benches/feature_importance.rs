//! **Feature importance** — the paper's challenge 1 ("which system
//! metrics should be leveraged") answered empirically: permutation
//! importance of every client-side and server-side (Table II) feature
//! on the trained IO500 model.

use qi_bench::{is_smoke, results_dir};
use qi_simkit::table::AsciiTable;
use quanterference::importance::permutation_importance;
use quanterference::predict::family_spec;
use quanterference::{generate, TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let spec = family_spec(&WorkloadKind::IO500, small);
    println!(
        "Feature importance: generating the IO500 dataset ({} runs)...",
        spec.n_runs()
    );
    let t0 = std::time::Instant::now();
    let gen = generate(&spec).expect("dataset generates");
    let (train_set, test_set) = gen.data.split(0.2, 42);
    let tcfg = TrainConfig {
        epochs: if small { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let mut model = qi_ml::train::train(&train_set, &tcfg);
    let imp = permutation_importance(&mut model, &test_set, spec.features, 7, 3)
        .expect("importance computes");
    println!(
        "base F1 {:.3} on {} test windows; permutation importance (top 15):\n",
        imp.base_f1,
        test_set.len()
    );
    let mut table = AsciiTable::new(vec!["rank", "feature", "F1 drop"]);
    for (i, (name, drop)) in imp.ranked().into_iter().enumerate() {
        if i < 15 {
            println!("  {:>2}. {:<26} {:+.4}", i + 1, name, drop);
        }
        table.add_row(vec![(i + 1).to_string(), name, format!("{drop:.5}")]);
    }
    // How do the metric *families* stack up?
    let family = |prefix: &str| -> f64 {
        imp.names
            .iter()
            .zip(&imp.drops)
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, &d)| d.max(0.0))
            .sum()
    };
    println!(
        "\nfamily totals: client-global {:+.3} | client-targeting {:+.3} | server-side {:+.3}",
        family("cl_"),
        family("tgt_"),
        family("srv_")
    );
    let path = results_dir().join("feature_importance.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
