//! Criterion micro-benchmarks for the substrate costs: the event engine,
//! the device model, the network, the monitors, and the neural network.
//! These quantify the paper's challenge 3 — keeping monitoring and
//! inference cheap enough for "real-time ... capabilities at the scale
//! of HPC systems".

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use qi_ml::data::Dataset;
use qi_ml::matrix::Matrix;
use qi_ml::model::KernelNet;
use qi_ml::train::{train, TrainConfig};
use qi_monitor::client::client_windows;
use qi_monitor::window::WindowConfig;
use qi_pfs::cluster::Cluster;
use qi_pfs::config::{ClusterConfig, DiskConfig, QueueConfig};
use qi_pfs::disk::Disk;
use qi_pfs::ids::{AppId, FileKey, NodeId, OpToken};
use qi_pfs::net::Network;
use qi_pfs::ops::{IoOp, OpKind, OpRecord, ProgramStep, RankProgram, RunTrace};
use qi_pfs::queue::{BlockDevice, ReqKind};
use qi_simkit::event::EventQueue;
use qi_simkit::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("simkit/event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime(i * 37 % 50_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn bench_device(c: &mut Criterion) {
    c.bench_function("pfs/device_submit_complete_1k", |b| {
        b.iter(|| {
            let mut d: BlockDevice<u32> = BlockDevice::new(
                QueueConfig::default(),
                Disk::new(DiskConfig::sata_7200_ost()),
            );
            let mut t = SimTime::ZERO;
            let mut pending = Vec::new();
            for i in 0..1_000u64 {
                let kind = if i % 3 == 0 {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                if let Some(dur) = d
                    .submit(t, kind, (i * 1711) % 1_000_000, 64, i % 3 != 0, i as u32)
                    .started()
                {
                    pending.push(dur);
                }
                while d.busy() {
                    let dur = pending.pop().unwrap_or(SimDuration::from_micros(100));
                    t += dur;
                    let (_, next) = d.complete(t);
                    if let Some(nd) = next.started() {
                        pending.push(nd);
                    }
                }
            }
            black_box(d.counters(t))
        })
    });
}

fn bench_network(c: &mut Criterion) {
    c.bench_function("pfs/network_send_10k", |b| {
        b.iter(|| {
            let mut n = Network::new(Default::default(), 16);
            let mut t = SimTime::ZERO;
            let mut last = SimTime::ZERO;
            for i in 0..10_000u32 {
                let src = NodeId(i % 8);
                let dst = NodeId(8 + (i % 8));
                last = n.send(t, src, dst, 4096);
                t = SimTime(t.as_nanos() + 500);
            }
            black_box(last)
        })
    });
}

/// A reusable streaming-reader scenario at small scale.
fn small_cluster_run() -> RunTrace {
    struct Reader {
        i: u64,
        n: u64,
        file: FileKey,
    }
    impl RankProgram for Reader {
        fn next(&mut self, _now: SimTime) -> ProgramStep {
            if self.i >= self.n {
                return ProgramStep::Finished;
            }
            self.i += 1;
            ProgramStep::Op(IoOp::Read {
                file: self.file,
                offset: (self.i - 1) * 1024 * 1024,
                len: 1024 * 1024,
            })
        }
    }
    let mut cl = Cluster::builder()
        .config(ClusterConfig::small())
        .seed(1)
        .build()
        .expect("valid test cluster");
    let file = FileKey {
        app: AppId(0),
        num: 1,
    };
    cl.precreate_file(file, 64 * 1024 * 1024, None);
    let app = cl.add_app(
        "reader",
        vec![Box::new(Reader { i: 0, n: 64, file })],
        &[NodeId(0)],
    );
    cl.run_until_app(app, SimTime::from_secs(60))
}

fn bench_cluster(c: &mut Criterion) {
    c.bench_function("pfs/cluster_64MiB_stream_read", |b| {
        b.iter(|| black_box(small_cluster_run().ops.len()))
    });
}

fn synthetic_trace(n_ops: usize) -> RunTrace {
    let mut t = RunTrace::default();
    for i in 0..n_ops {
        t.ops.push(OpRecord {
            token: OpToken {
                app: AppId((i % 3) as u32),
                rank: (i % 4) as u32,
                seq: i as u64,
            },
            kind: if i % 2 == 0 {
                OpKind::Read
            } else {
                OpKind::Write
            },
            bytes: 4096,
            issued: SimTime(i as u64 * 100_000),
            completed: SimTime(i as u64 * 100_000 + 50_000),
        });
    }
    t
}

fn bench_monitor(c: &mut Criterion) {
    let trace = synthetic_trace(50_000);
    c.bench_function("monitor/client_windows_50k_ops", |b| {
        b.iter(|| black_box(client_windows(&trace, WindowConfig::seconds(1), 7).len()))
    });
}

fn bench_ml(c: &mut Criterion) {
    c.bench_function("ml/matmul_256x64_64x64", |b| {
        let a = Matrix::from_vec(256, 64, (0..256 * 64).map(|i| (i % 17) as f32).collect());
        let m = Matrix::from_vec(
            64,
            64,
            (0..64 * 64).map(|i| (i % 13) as f32 * 0.1).collect(),
        );
        b.iter(|| black_box(a.matmul(&m).data()[0]))
    });

    c.bench_function("ml/kernelnet_inference_1_window", |b| {
        let mut net = KernelNet::new(39, 7, &[32, 16], &[16], 2, 1);
        let x = Matrix::from_vec(7, 39, (0..7 * 39).map(|i| (i % 11) as f32 * 0.3).collect());
        b.iter(|| black_box(net.forward(&x).data()[0]))
    });

    c.bench_function("ml/train_200_samples_5_epochs", |b| {
        let samples: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                (0..3 * 8)
                    .map(|j| ((i * 7 + j) % 19) as f32 * 0.2)
                    .collect()
            })
            .collect();
        let y: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let data = Dataset::from_samples(samples, y, 3);
        let cfg = TrainConfig {
            epochs: 5,
            ..TrainConfig::default()
        };
        b.iter_batched(
            || data.clone(),
            |d| black_box(train(&d, &cfg).loss_curve.len()),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_device,
    bench_network,
    bench_cluster,
    bench_monitor,
    bench_ml
);
criterion_main!(benches);
