//! **Ablation: the paper's future-work extensions** (§VI: "we plan to
//! further investigate other possible network architectures, such as
//! transformers").
//!
//! Compares, on the same IO500 dataset and split:
//!
//! 1. the paper's kernel network (baseline);
//! 2. a single-head self-attention model over per-server tokens (the
//!    transformer direction of the paper's future work);
//! 3. a degradation-level *regressor* whose predictions are thresholded
//!    back into the paper's bins (quantifying why the paper classifies
//!    instead of regressing).

use qi_bench::{is_smoke, results_dir, summary_table};
use qi_ml::attention::AttentionNet;
use qi_ml::data::{Dataset, Standardizer};
use qi_ml::loss::{inverse_frequency_weights, softmax_cross_entropy};
use qi_ml::metrics::ConfusionMatrix;
use qi_ml::optim::Adam;
use qi_ml::regress::train_regression;
use qi_ml::train::{train, TrainConfig};
use quanterference::labeling::Bins;
use quanterference::predict::{family_spec, EvalReport};
use quanterference::{generate, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn report_from_cm(
    cm: ConfusionMatrix,
    train_n: usize,
    test_n: usize,
    labels: &[String],
) -> EvalReport {
    EvalReport {
        train_size: train_n,
        test_size: test_n,
        train_counts: vec![],
        test_counts: vec![],
        cm,
        labels: labels.to_vec(),
        metrics: qi_telemetry::MetricsSnapshot::new(),
    }
}

/// Train the attention model with the same protocol as the kernel net.
fn train_attention(
    train_set: &Dataset,
    test_set: &Dataset,
    cfg: &TrainConfig,
    labels: &[String],
) -> EvalReport {
    let standardizer = Standardizer::fit(&train_set.x);
    let mut x = train_set.x.clone();
    standardizer.transform(&mut x);
    let std_train = Dataset {
        x,
        y: train_set.y.clone(),
        n_servers: train_set.n_servers,
    };
    let mut net = AttentionNet::new(
        std_train.n_features(),
        std_train.n_servers,
        24,
        &[16],
        cfg.n_classes,
        cfg.seed,
    );
    let mut opt = Adam::new(cfg.lr);
    let weights = inverse_frequency_weights(&std_train.y, cfg.n_classes);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xA77);
    let mut order: Vec<usize> = (0..std_train.len()).collect();
    for _ in 0..cfg.epochs {
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for chunk in order.chunks(cfg.batch) {
            let sub = std_train.subset(chunk);
            let logits = net.forward(&sub.x);
            let (_, grad) = softmax_cross_entropy(&logits, &sub.y, &weights);
            net.backward(&grad);
            net.apply(&mut opt);
        }
        opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    // Evaluate.
    let mut xt = test_set.x.clone();
    standardizer.transform(&mut xt);
    let logits = net.forward(&xt);
    let mut cm = ConfusionMatrix::new(cfg.n_classes);
    for (r, &actual) in test_set.y.iter().enumerate() {
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        cm.record(actual, pred);
    }
    report_from_cm(cm, train_set.len(), test_set.len(), labels)
}

fn main() {
    let small = is_smoke();
    let spec = family_spec(&WorkloadKind::IO500, small);
    println!(
        "Ablation (model extensions): generating the IO500 dataset ({} runs)...",
        spec.n_runs()
    );
    let t0 = std::time::Instant::now();
    let gen = generate(&spec).expect("dataset generates");
    let labels = gen.bins.labels();
    let epochs = if small { 20 } else { 40 };

    // Split samples AND keep the raw levels aligned for the regressor.
    let n = gen.data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(42);
    for i in (1..idx.len()).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    let n_test = (n as f64 * 0.2).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test);
    let train_set = gen.data.subset(train_idx);
    let test_set = gen.data.subset(test_idx);
    let train_levels: Vec<f64> = train_idx.iter().map(|&i| gen.meta[i].level).collect();

    // 1. Kernel network.
    let cfg = TrainConfig {
        epochs,
        ..TrainConfig::default()
    };
    let mut kernel_model = train(&train_set, &cfg);
    let kernel = report_from_cm(
        kernel_model.evaluate(&test_set),
        train_set.len(),
        test_set.len(),
        &labels,
    );

    // 2. Attention model.
    println!("training the self-attention extension...");
    let attention = train_attention(&train_set, &test_set, &cfg, &labels);

    // 3. Regression + thresholding.
    println!("training the level regressor...");
    let mut reg = train_regression(&train_set, &train_levels, &cfg);
    let preds = reg.predict_levels(&test_set);
    let bins = Bins::binary();
    let mut cm = ConfusionMatrix::new(2);
    for (p, &actual) in preds.iter().zip(&test_set.y) {
        cm.record(actual, bins.classify(*p));
    }
    let regression = report_from_cm(cm, train_set.len(), test_set.len(), &labels);

    println!("\nmodel-extension comparison (same data, same split):");
    let rows = [
        ("kernel-net (paper)", &kernel),
        ("self-attention (future work)", &attention),
        ("regression + threshold", &regression),
    ];
    let table = summary_table(&rows);
    println!("{}", table.render());
    println!(
        "kernel F1 {:.3} | attention F1 {:.3} | regression F1 {:.3}",
        kernel.headline_f1(),
        attention.headline_f1(),
        regression.headline_f1()
    );

    let path = results_dir().join("ablation_model_extensions.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
