//! **Closed-loop control bench** (DESIGN.md — control loop).
//!
//! The payoff the paper motivates: "users can develop more effective
//! methods to mitigate such impacts" (§II-B). A model is trained on the
//! smoke IO500 grid at 100 ms windows, then deployed *online*: a
//! [`ControlLoop`] rides the simulation, asks the sharded serve engine
//! for per-window predictions, and rate-limits the interfering
//! applications only while the target's predicted slowdown is ≥2x. Three
//! interference regimes (severe metadata-vs-bulk, moderate read-vs-read,
//! and the severe regime on faulted hardware) are each run four ways —
//! ideal, unmitigated, guided, and uniform always-on throttling — and
//! the table reports how much slowdown each controller recovered and how
//! much background throughput it cost.
//!
//! Written to `BENCH_control.json` at the repository root:
//!
//! 1. `closed_loop` — the guided-vs-uniform table above.
//! 2. `overhead` — controller cost per simulated window: wall-clock of
//!    the controlled run minus the uncontrolled run, divided by the
//!    number of control ticks (best-of-N samples; the workload is
//!    deterministic so scheduler noise is strictly additive).
//!
//! **Closed-loop gate** (non-zero exit on failure, `QI_SKIP_CONTROL_GATE=1`
//! to waive — recorded in the JSON): in every regime the guided run must
//! not be slower than the unmitigated run (beyond 5% tolerance), must
//! actually emit directives, and must tax the background strictly less
//! than uniform throttling does.
//!
//! Knobs: `QI_BENCH_OUT=path.json`, `QI_SMOKE=1` (fewer training seeds
//! and epochs, fewer overhead samples), `QI_SKIP_CONTROL_GATE=1`.

use std::time::Instant;

use qi_bench::{is_smoke, results_dir};
use qi_ml::serialize::{model_from_text, model_to_text};
use qi_serve::{ModelRegistry, OverloadPolicy, ServeConfig, ShardedServeEngine};
use qi_simkit::table::AsciiTable;
use qi_simkit::time::{SimDuration, SimTime};
use quanterference::prelude::*;

/// Rate given to both policies, so the comparison isolates *when* they
/// throttle, not *how hard*.
const RATE: f64 = 5.0e6;

struct Regime {
    name: &'static str,
    target: WorkloadKind,
    noise_kind: WorkloadKind,
    faulted: bool,
}

const REGIMES: [Regime; 3] = [
    Regime {
        name: "mdt-hard-write vs 2x ior-easy-write",
        target: WorkloadKind::MdtHardWrite,
        noise_kind: WorkloadKind::IorEasyWrite,
        faulted: false,
    },
    Regime {
        name: "ior-easy-read vs 2x ior-easy-read",
        target: WorkloadKind::IorEasyRead,
        noise_kind: WorkloadKind::IorEasyRead,
        faulted: false,
    },
    Regime {
        name: "mdt-hard-write vs 2x ior-easy-write, slow MDT",
        target: WorkloadKind::MdtHardWrite,
        noise_kind: WorkloadKind::IorEasyWrite,
        faulted: true,
    },
];

fn scenario(r: &Regime) -> Scenario {
    let s = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(r.target, 55)
    }
    .with_interference(InterferenceSpec {
        kind: r.noise_kind,
        instances: 2,
        ranks: 2,
    });
    if !r.faulted {
        return s;
    }
    // Slow the *MDT* backing disk (device index n_osts): the metadata
    // target feels it directly, so the faulted regime visibly diverges
    // from the healthy one instead of only shaving OST bandwidth the
    // target never uses.
    s.with_fault_plan(FaultPlan::new().with(FaultEvent::SlowDisk {
        dev: ClusterConfig::small().n_osts(),
        factor: 3.0,
        from: SimTime::ZERO + SimDuration::from_secs(1),
        until: SimTime::ZERO + SimDuration::from_secs(20),
    }))
}

/// Serve engine rebuilt from frozen model text, so every controlled run
/// (and every overhead sample) deploys the identical model.
fn fresh_service(text: &str, tenants: &[AppId]) -> ShardedServeEngine {
    let model = model_from_text(text).expect("frozen model text parses");
    let window = model
        .schema()
        .window_config()
        .expect("trained schemas carry a window");
    let mut registry = ModelRegistry::new(model.shape(), model.schema().clone());
    registry.load_text(1, text).expect("frozen model loads");
    registry.activate(1).expect("loaded version activates");
    let cfg = ServeConfig {
        max_batch: tenants.len().max(1),
        max_delay: window.window,
        queue_cap: 4 * tenants.len().max(1),
        admission: None,
        overload: OverloadPolicy::Shed,
        tenants: tenants.to_vec(),
        threads: None,
    };
    ShardedServeEngine::new(cfg, registry, 2).expect("two shards build")
}

fn guided_loop(text: &str, s: &Scenario) -> ControlLoop {
    let target = AppId(0);
    let noise = noise_app_ids(s);
    let mut tenants = vec![target];
    tenants.extend(noise.iter().copied());
    ControlLoop::builder()
        .predictor(fresh_service(text, &tenants))
        .policy(GuidedThrottle::new(target, noise, 1, RATE).expect("valid policy"))
        .n_devices(s.cluster.n_devices())
        .build()
        .expect("guided loop builds")
}

struct OverheadRow {
    regime: &'static str,
    windows: u64,
    uncontrolled_ms: f64,
    controlled_ms: f64,
    overhead_us_per_window: f64,
}

/// Best-of-`samples` wall time of `f`, in milliseconds.
fn best_ms<T>(samples: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(v);
    }
    (best, last.expect("at least one sample"))
}

struct LoopRow {
    regime: &'static str,
    policy: &'static str,
    outcome: MitigationOutcome,
}

fn write_json(
    rows: &[LoopRow],
    overhead: &[OverheadRow],
    gate: (bool, bool, &str),
    out: &std::path::Path,
) {
    let (enforced, passed, basis) = gate;
    let mut s = String::from("{\n");
    s.push_str("  \"generated_by\": \"cargo bench -p qi-bench --bench control_loop\",\n");
    s.push_str(&format!(
        "  \"gate\": {{\"basis\": \"{basis}\", \"enforced\": {enforced}, \"passed\": {passed}}},\n"
    ));
    s.push_str("  \"closed_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let o = &r.outcome;
        s.push_str(&format!(
            "    {{\"regime\": \"{}\", \"policy\": \"{}\", \"baseline_s\": {:.4}, \
             \"unmitigated_s\": {:.4}, \"mitigated_s\": {:.4}, \"recovered\": {:.3}, \
             \"noise_cost\": {:.3}, \"directives\": {}, \"throttled_windows\": {}}}{}\n",
            r.regime,
            r.policy,
            o.baseline_s,
            o.unmitigated_s,
            o.mitigated_s,
            o.recovered_fraction(),
            o.noise_cost_fraction(),
            o.directives.len(),
            o.throttled_windows.len(),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n  \"overhead\": [\n");
    for (i, r) in overhead.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"regime\": \"{}\", \"windows\": {}, \"uncontrolled_ms\": {:.3}, \
             \"controlled_ms\": {:.3}, \"overhead_us_per_window\": {:.3}}}{}\n",
            r.regime,
            r.windows,
            r.uncontrolled_ms,
            r.controlled_ms,
            r.overhead_us_per_window,
            if i + 1 < overhead.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).expect("write BENCH_control.json");
}

fn main() {
    let small = is_smoke();
    let skip_gate = std::env::var("QI_SKIP_CONTROL_GATE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let samples = if small { 2 } else { 3 };
    let t0 = Instant::now();

    // Train at 100 ms windows: sub-second windows give the online loop
    // several decision points inside the short smoke-scale target runs.
    let mut spec = DatasetSpec::smoke();
    spec.seeds = if small {
        (1..=4).collect()
    } else {
        (1..=6).collect()
    };
    spec.window = WindowConfig::millis(100);
    println!(
        "training the predictor on the IO500 grid ({} runs, 100 ms windows)...",
        spec.n_runs()
    );
    let tcfg = TrainConfig {
        epochs: if small { 30 } else { 40 },
        ..TrainConfig::default()
    };
    let (_, predictor, report) = train_and_evaluate(&spec, &tcfg, 3).expect("pipeline trains");
    println!("model F1 = {:.3}\n", report.headline_f1());
    let text = model_to_text(&predictor.into_model());

    let mut table = AsciiTable::new(vec![
        "regime",
        "policy",
        "baseline (s)",
        "interfered (s)",
        "mitigated (s)",
        "recovered",
        "noise cost",
        "directives",
    ]);
    let mut rows: Vec<LoopRow> = Vec::new();
    let mut overhead: Vec<OverheadRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for regime in &REGIMES {
        let s = scenario(regime);

        let guided =
            evaluate_mitigation(&s, guided_loop(&text, &s)).expect("guided mitigation runs");
        let uniform_ctl = ControlLoop::builder()
            .policy(UniformThrottle::new(noise_app_ids(&s), RATE).expect("valid policy"))
            .window(WindowConfig::millis(100))
            .build()
            .expect("uniform loop builds");
        let uniform = evaluate_mitigation(&s, uniform_ctl).expect("uniform mitigation runs");

        for (policy, o) in [("guided", &guided), ("uniform", &uniform)] {
            table.add_row(vec![
                regime.name.to_string(),
                policy.to_string(),
                format!("{:.3}", o.baseline_s),
                format!("{:.3}", o.unmitigated_s),
                format!("{:.3}", o.mitigated_s),
                format!("{:.0}%", o.recovered_fraction() * 100.0),
                format!("{:.0}%", o.noise_cost_fraction() * 100.0),
                o.directives.len().to_string(),
            ]);
        }

        // The closed-loop gate: guided must help (or at least not hurt),
        // must actually act, and must tax the background less than the
        // paper's "uniform treatment" strawman.
        if guided.mitigated_s > guided.unmitigated_s * 1.05 {
            failures.push(format!(
                "{}: guided mitigation hurt the target ({:.3}s vs {:.3}s unmitigated)",
                regime.name, guided.mitigated_s, guided.unmitigated_s
            ));
        }
        if guided.directives.is_empty() {
            failures.push(format!("{}: the guided loop never acted", regime.name));
        }
        if guided.noise_cost_fraction() >= uniform.noise_cost_fraction() {
            failures.push(format!(
                "{}: guided cost {:.0}% did not beat uniform cost {:.0}%",
                regime.name,
                guided.noise_cost_fraction() * 100.0,
                uniform.noise_cost_fraction() * 100.0
            ));
        }

        // Controller overhead: wall time with and without the loop, per
        // control tick. Trace telemetry reports how many ticks ran.
        let (unctl_ms, _) = best_ms(samples, || s.run().expect("unmitigated run"));
        let (ctl_ms, (_, trace)) = best_ms(samples, || {
            let ctl = guided_loop(&text, &s);
            s.run_with(|cl| cl.install_controller(Box::new(ctl)))
                .expect("controlled run")
        });
        let windows = trace.metrics.counter("control.ticks").unwrap_or(0);
        overhead.push(OverheadRow {
            regime: regime.name,
            windows,
            uncontrolled_ms: unctl_ms,
            controlled_ms: ctl_ms,
            overhead_us_per_window: if windows > 0 {
                ((ctl_ms - unctl_ms) * 1e3 / windows as f64).max(0.0)
            } else {
                0.0
            },
        });

        rows.push(LoopRow {
            regime: regime.name,
            policy: "guided",
            outcome: guided,
        });
        rows.push(LoopRow {
            regime: regime.name,
            policy: "uniform",
            outcome: uniform,
        });
    }

    println!("{}", table.render());
    for r in &overhead {
        println!(
            "overhead [{}]: {} windows, {:.1} ms uncontrolled vs {:.1} ms controlled \
             ({:.1} us/window)",
            r.regime, r.windows, r.uncontrolled_ms, r.controlled_ms, r.overhead_us_per_window
        );
    }
    println!(
        "\nselective throttling engages only where the model predicts >=2x \
         slowdown — uniform throttling pays the noise cost everywhere."
    );

    let csv = results_dir().join("control_loop.csv");
    table.write_csv(&csv).expect("write CSV");

    let out = std::env::var("QI_BENCH_OUT").map_or_else(
        |_| {
            std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_control.json")
        },
        std::path::PathBuf::from,
    );
    let passed = failures.is_empty();
    write_json(
        &rows,
        &overhead,
        (
            !skip_gate,
            passed,
            "guided helps, acts, and costs less background throughput than uniform",
        ),
        &out,
    );
    println!("generated in {:.1?}; JSON: {}", t0.elapsed(), out.display());

    if !passed {
        for f in &failures {
            eprintln!("closed-loop gate: {f}");
        }
        if !skip_gate {
            panic!(
                "closed-loop gate failed ({} violation(s)); set QI_SKIP_CONTROL_GATE=1 to waive",
                failures.len()
            );
        }
        eprintln!("QI_SKIP_CONTROL_GATE=1: gate waived (recorded in the JSON)");
    }
}
