//! **Mitigation demo** — the payoff the paper motivates: "users can
//! develop more effective methods to mitigate such impacts" (§II-B).
//!
//! A model is trained on the IO500 grid, then deployed in a
//! predict→throttle→replay loop: windows the model flags ≥2x trigger a
//! token-bucket-style rate limit on the interfering application, and the
//! scenario is replayed. The table reports, per scenario, how much of
//! the target's lost performance was recovered and how much interference
//! throughput the throttle cost — the *selective* treatment the paper
//! argues for (vs. the "uniform treatment" it calls inefficient).

use qi_bench::{is_smoke, results_dir};
use qi_simkit::table::AsciiTable;
use quanterference::mitigation::{prediction_guided_throttling, uniform_tbf_throttling};
use quanterference::predict::{family_spec, train_and_evaluate};
use quanterference::scenario::{InterferenceSpec, Scenario};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let t0 = std::time::Instant::now();
    let mut spec = family_spec(&WorkloadKind::IO500, small);
    if small {
        spec.seeds = (1..=4).collect();
    }
    println!(
        "training the predictor on the IO500 grid ({} runs)...",
        spec.n_runs()
    );
    let tcfg = TrainConfig {
        epochs: if small { 15 } else { 40 },
        ..TrainConfig::default()
    };
    let (_, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 42).expect("pipeline trains");
    println!("model F1 = {:.3}\n", report.headline_f1());

    let cases: Vec<(WorkloadKind, WorkloadKind, u32)> = vec![
        (WorkloadKind::IorEasyRead, WorkloadKind::IorEasyRead, 3),
        (WorkloadKind::IorEasyWrite, WorkloadKind::IorHardWrite, 3),
        (WorkloadKind::MdtHardWrite, WorkloadKind::IorEasyWrite, 3),
        (WorkloadKind::IorEasyRead, WorkloadKind::MdtEasyWrite, 3),
    ];
    let mut table = AsciiTable::new(vec![
        "target",
        "noise",
        "baseline (s)",
        "interfered (s)",
        "mitigated (s)",
        "recovered",
        "noise cost",
        "throttled windows",
    ]);
    for (target, noise, instances) in cases {
        let mut scenario = Scenario::baseline(target, 91);
        if small {
            scenario.cluster = qi_pfs::config::ClusterConfig::small();
            scenario.small = true;
            scenario.target_ranks = 2;
        }
        let scenario = scenario.with_interference(InterferenceSpec {
            kind: noise,
            instances,
            ranks: if small { 2 } else { spec.noise_ranks },
        });
        let outcome = prediction_guided_throttling(&scenario, &mut predictor, 1)
            .expect("guided throttling runs");
        table.add_row(vec![
            format!("{} (guided)", target.name()),
            noise.name().to_string(),
            format!("{:.2}", outcome.baseline_s),
            format!("{:.2}", outcome.unmitigated_s),
            format!("{:.2}", outcome.mitigated_s),
            format!("{:.0}%", outcome.recovered_fraction() * 100.0),
            format!("{:.0}%", outcome.noise_cost_fraction() * 100.0),
            outcome.throttled_windows.len().to_string(),
        ]);
        // The paper's "uniform treatment" strawman: a blanket server-side
        // token-bucket filter on every interfering app, all the time.
        let uniform = uniform_tbf_throttling(&scenario, 20.0e6).expect("uniform throttling runs");
        table.add_row(vec![
            format!("{} (uniform TBF)", target.name()),
            noise.name().to_string(),
            format!("{:.2}", uniform.baseline_s),
            format!("{:.2}", uniform.unmitigated_s),
            format!("{:.2}", uniform.mitigated_s),
            format!("{:.0}%", uniform.recovered_fraction() * 100.0),
            format!("{:.0}%", uniform.noise_cost_fraction() * 100.0),
            "all".to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "selective throttling engages only where the model predicts >=2x \
         slowdown — uniform throttling would pay the noise cost everywhere."
    );
    let path = results_dir().join("mitigation_demo.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
