//! **Figure 5** — binary interference prediction for the three real-
//! application proxies: AMReX and Enzo (data-intensive) and OpenPMD
//! (metadata-intensive). Per the paper's protocol each application runs
//! once without interference and then with increasing amounts of IO500
//! noise; a model is trained and tested per application. The paper sees
//! strong results for AMReX and especially Enzo, and a weaker OpenPMD
//! model, attributed to its small sample count.

use qi_bench::{is_smoke, print_report, report_table, results_dir, summary_table};
use quanterference::predict::{family_spec, train_and_evaluate, EvalReport};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let tcfg = TrainConfig {
        epochs: if small { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let mut reports: Vec<(&str, EvalReport, usize)> = Vec::new();
    for app in WorkloadKind::APPS {
        let mut spec = family_spec(&[app], small);
        if app == WorkloadKind::OpenPmd {
            // The paper collected notably fewer OpenPMD samples and got
            // a weaker model; mirror that by shrinking its grid.
            spec.seeds.truncate(2);
            spec.intensities = vec![1, 3];
        }
        println!(
            "Figure 5: training on {} ({} runs)...",
            app.name(),
            spec.n_runs()
        );
        let (gen, _, report) = train_and_evaluate(&spec, &tcfg, 42).expect("pipeline trains");
        print_report(
            &format!("Fig. 5 — binary model, {}", app.name()),
            &gen,
            &report,
        );
        reports.push((app.name(), report, gen.data.len()));
    }

    println!("paper-vs-measured:");
    for (name, report, n) in &reports {
        println!(
            "  {:<8} F1 {:.3} on {:>5} windows{}",
            name,
            report.headline_f1(),
            n,
            match *name {
                "openpmd" => "  (paper: weakest of the three, small sample count)",
                "enzo" => "  (paper: best of the three)",
                _ => "",
            }
        );
    }

    let dir = results_dir();
    for (name, report, _) in &reports {
        report_table(name, report)
            .write_csv(dir.join(format!("fig5_{name}_confusion.csv")))
            .expect("write CSV");
    }
    let rows: Vec<(&str, &EvalReport)> = reports.iter().map(|(n, r, _)| (*n, r)).collect();
    summary_table(&rows)
        .write_csv(dir.join("fig5_summary.csv"))
        .expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSVs under {}",
        t0.elapsed(),
        dir.display()
    );
}
