//! **Ablation: feature sources** (DESIGN.md — paper challenge 1: "which
//! system metrics should be leveraged").
//!
//! The framework fuses client-side metrics (the application's own
//! request pattern, §III-A) with server-side metrics (shared-resource
//! state, Table II). This ablation trains the same model on:
//!
//! 1. client-side features only,
//! 2. server-side features only,
//! 3. both (the paper's design).

use qi_bench::{is_smoke, results_dir, summary_table};
use qi_monitor::features::FeatureConfig;
use quanterference::predict::{family_spec, train_and_evaluate, EvalReport};
use quanterference::{TrainConfig, WorkloadKind};

fn main() {
    let small = is_smoke();
    let tcfg = TrainConfig {
        epochs: if small { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let arms = [
        (
            "client-only",
            FeatureConfig {
                client: true,
                server: false,
            },
        ),
        (
            "server-only",
            FeatureConfig {
                client: false,
                server: true,
            },
        ),
        (
            "client+server (paper)",
            FeatureConfig {
                client: true,
                server: true,
            },
        ),
    ];
    let t0 = std::time::Instant::now();
    let mut reports: Vec<(&str, EvalReport)> = Vec::new();
    for (label, features) in arms {
        let mut spec = family_spec(&WorkloadKind::IO500, small);
        spec.features = features;
        println!(
            "Ablation (features): {label} ({} dims/server)...",
            features.len()
        );
        let (_, _, report) = train_and_evaluate(&spec, &tcfg, 42).expect("pipeline trains");
        reports.push((label, report));
    }

    println!("\nfeature-source comparison:");
    let rows: Vec<(&str, &EvalReport)> = reports.iter().map(|(n, r)| (*n, r)).collect();
    let table = summary_table(&rows);
    println!("{}", table.render());
    let f1 = |i: usize| reports[i].1.headline_f1();
    println!(
        "client-only {:.3} | server-only {:.3} | fused {:.3} -> {}",
        f1(0),
        f1(1),
        f1(2),
        if f1(2) >= f1(0).max(f1(1)) - 0.02 {
            "fusing both sources is never worse [supports the paper's design]"
        } else {
            "a single source sufficed on this grid"
        }
    );

    let path = results_dir().join("ablation_features.csv");
    table.write_csv(&path).expect("write CSV");
    println!(
        "\ngenerated in {:.1?}; CSV: {}",
        t0.elapsed(),
        path.display()
    );
}
