//! Shared plumbing for the experiment benches: smoke-mode detection,
//! result paths, and report rendering.
//!
//! Every paper table/figure has a `[[bench]]` target in this crate with
//! `harness = false`; each regenerates its table/series, prints it, and
//! writes a CSV under `results/`. Set `QI_SMOKE=1` (or pass `--smoke`)
//! to run the reduced-scale variants.

use std::path::PathBuf;

use qi_simkit::table::AsciiTable;
use quanterference::dataset::GeneratedDataset;
use quanterference::predict::EvalReport;

/// True when the reduced-scale (fast) variant was requested.
pub fn is_smoke() -> bool {
    std::env::var("QI_SMOKE").map(|v| v == "1").unwrap_or(false)
        || std::env::args().any(|a| a == "--smoke")
}

/// The repository's `results/` directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Print one model-evaluation report in the style of the paper's
/// Figures 3-5 (dataset stats + confusion matrix + F1).
pub fn print_report(title: &str, gen: &GeneratedDataset, report: &EvalReport) {
    println!("=== {title} ===");
    println!(
        "dataset: {} windows total | train {} {:?} | test {} {:?}",
        gen.data.len(),
        report.train_size,
        report.train_counts,
        report.test_size,
        report.test_counts,
    );
    println!("{}", report.render());
    println!(
        "headline F1 = {:.3}  (accuracy {:.3}, macro-F1 {:.3})",
        report.headline_f1(),
        report.cm.accuracy(),
        report.cm.macro_f1()
    );
    if !report.metrics.metrics.is_empty() {
        println!(
            "telemetry: {} metrics (ml.train.* / ml.eval.*)",
            report.metrics.metrics.len()
        );
    }
    println!();
}

/// Serialise a report's confusion matrix as CSV rows.
pub fn report_table(name: &str, report: &EvalReport) -> AsciiTable {
    let mut t = AsciiTable::new(vec![
        "model".to_string(),
        "actual".to_string(),
        "predicted".to_string(),
        "count".to_string(),
    ]);
    let n = report.cm.n_classes();
    for a in 0..n {
        for p in 0..n {
            t.add_row(vec![
                name.to_string(),
                report.labels[a].clone(),
                report.labels[p].clone(),
                report.cm.get(a, p).to_string(),
            ]);
        }
    }
    t
}

/// Summary metrics rows (F1/accuracy) for several reports.
pub fn summary_table(rows: &[(&str, &EvalReport)]) -> AsciiTable {
    let mut t = AsciiTable::new(vec![
        "model".to_string(),
        "train_windows".to_string(),
        "test_windows".to_string(),
        "accuracy".to_string(),
        "headline_f1".to_string(),
        "macro_f1".to_string(),
    ]);
    for (name, r) in rows {
        t.add_row(vec![
            name.to_string(),
            r.train_size.to_string(),
            r.test_size.to_string(),
            format!("{:.4}", r.cm.accuracy()),
            format!("{:.4}", r.headline_f1()),
            format!("{:.4}", r.cm.macro_f1()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_points_at_repo() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn summary_table_shapes() {
        // Build a trivial report through the public pipeline would be
        // slow here; just check the table skeleton.
        let t = summary_table(&[]);
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("headline_f1"));
    }
}
