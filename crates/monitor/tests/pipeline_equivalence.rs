//! Property: the batch adapters (`client_windows`, `server_windows`)
//! are **byte-identical** to driving the streaming [`FeaturePipeline`]
//! one event at a time, for arbitrary interleaved op/RPC/sample
//! streams. This is the train/serve-skew guarantee the whole refactor
//! exists for: there is one aggregation definition, and whichever way
//! events reach it, the numbers that come out are the same bits.

use std::collections::HashMap;

use proptest::prelude::*;
use qi_monitor::client::{client_windows, ClientWindow};
use qi_monitor::features::{server_vector, FeatureConfig};
use qi_monitor::pipeline::{EmittedWindow, FeaturePipeline};
use qi_monitor::server::{server_windows, ServerWindow};
use qi_monitor::window::WindowConfig;
use qi_pfs::ids::{AppId, DeviceId, OpToken};
use qi_pfs::ops::{OpKind, OpRecord, RpcRecord, RunTrace, ServerSample};
use qi_pfs::queue::DeviceCounters;
use qi_simkit::time::SimTime;

const KINDS: [OpKind; 6] = [
    OpKind::Read,
    OpKind::Write,
    OpKind::Open,
    OpKind::Create,
    OpKind::Stat,
    OpKind::Close,
];

/// (app, kind index, bytes, completed_ms, duration_ms)
fn arb_ops() -> impl Strategy<Value = Vec<(u32, usize, u64, u64, u64)>> {
    prop::collection::vec(
        (
            0u32..3,
            0usize..KINDS.len(),
            0u64..1_000_000,
            0u64..8_000,
            0u64..500,
        ),
        0..60,
    )
}

/// (app, device, kind index, bytes, issued_ms)
fn arb_rpcs(n_devices: u32) -> impl Strategy<Value = Vec<(u32, u32, usize, u64, u64)>> {
    prop::collection::vec(
        (
            0u32..3,
            0..n_devices,
            0usize..KINDS.len(),
            0u64..1_000_000,
            0u64..8_000,
        ),
        0..60,
    )
}

/// Per-sample: (device, gap_ms ≥ 1, two groups of counter deltas,
/// dirty_bytes). Gaps accumulate per device, deltas accumulate into
/// cumulative counters — so every device's sample times are strictly
/// increasing and its counters non-decreasing, as a real server
/// monitor produces.
type SampleSeed = (u32, u64, (u64, u64, u64, u64), (u64, u64, u64, u64), u64);

fn arb_samples(n_devices: u32) -> impl Strategy<Value = Vec<SampleSeed>> {
    prop::collection::vec(
        (
            0..n_devices,
            1u64..1_500,
            (0u64..50, 0u64..5_000, 0u64..5_000, 0u64..60),
            (0u64..20, 0u64..2_000_000, 0u64..2_000_000, 0u64..1_000_000),
            0u64..10_000_000,
        ),
        0..40,
    )
}

/// Materialise a trace from the seeds. Sample streams are built
/// per-device (cumulative time + counters) and merged by time, stably,
/// so the trace looks like what the simulator records.
fn build_trace(
    ops: &[(u32, usize, u64, u64, u64)],
    rpcs: &[(u32, u32, usize, u64, u64)],
    samples: &[SampleSeed],
) -> RunTrace {
    let mut trace = RunTrace::default();
    for (i, &(app, kind, bytes, completed_ms, dur_ms)) in ops.iter().enumerate() {
        let completed = SimTime::from_millis(completed_ms + dur_ms);
        trace.ops.push(OpRecord {
            token: OpToken {
                app: AppId(app),
                rank: 0,
                seq: i as u64,
            },
            kind: KINDS[kind],
            bytes,
            issued: SimTime::from_millis(completed_ms),
            completed,
        });
    }
    trace.ops.sort_by_key(|o| o.completed);
    for &(app, dev, kind, bytes, issued_ms) in rpcs {
        trace.rpcs.push(RpcRecord {
            app: AppId(app),
            dev: DeviceId(dev),
            kind: KINDS[kind],
            bytes,
            issued: SimTime::from_millis(issued_ms),
        });
    }
    trace.rpcs.sort_by_key(|r| r.issued);
    let mut clocks: HashMap<u32, u64> = HashMap::new();
    let mut counters: HashMap<u32, DeviceCounters> = HashMap::new();
    let mut svec: Vec<ServerSample> = Vec::new();
    for &(
        dev,
        gap_ms,
        (d_reads, d_sread, d_swritten, d_enq),
        (d_merge, d_wait, d_depth, d_busy),
        dirty,
    ) in samples
    {
        let t = clocks.entry(dev).or_insert(0);
        *t += gap_ms;
        let c = counters.entry(dev).or_default();
        c.reads_completed += d_reads;
        c.sectors_read += d_sread;
        c.sectors_written += d_swritten;
        c.enqueued += d_enq;
        c.read_merges += d_merge;
        c.wait_ns += d_wait;
        c.weighted_depth_ns += d_depth;
        c.busy_ns += d_busy;
        svec.push(ServerSample {
            time: SimTime::from_millis(*t),
            dev: DeviceId(dev),
            counters: *c,
            dirty_bytes: dirty,
            throttled_now: 0,
        });
    }
    svec.sort_by_key(|s| s.time);
    trace.samples = svec.into_iter().collect();
    trace
}

/// Drive the pipeline one event at a time in canonical merged order
/// (at equal timestamps: samples, then RPCs, then ops — the order
/// `FeaturePipeline` documents and its batch entry points use).
fn stream_trace(trace: &RunTrace, cfg: WindowConfig, n_devices: u32) -> Vec<EmittedWindow> {
    let mut p = FeaturePipeline::new(cfg, FeatureConfig::default(), n_devices);
    let mut emitted = Vec::new();
    let samples = trace.samples.to_vec();
    let (mut oi, mut ri, mut si) = (0, 0, 0);
    loop {
        let t_op = trace.ops.get(oi).map(|o| o.completed);
        let t_rpc = trace.rpcs.get(ri).map(|r| r.issued);
        let t_smp = samples.get(si).map(|s| s.time);
        let Some(next) = [t_smp, t_rpc, t_op].into_iter().flatten().min() else {
            break;
        };
        let step = if t_smp == Some(next) {
            si += 1;
            p.push_sample(&samples[si - 1])
        } else if t_rpc == Some(next) {
            ri += 1;
            p.push_rpc(&trace.rpcs[ri - 1])
        } else {
            oi += 1;
            p.push_op(&trace.ops[oi - 1])
        };
        emitted.extend(step.expect("merged stream is in order"));
    }
    emitted.extend(p.finish());
    emitted
}

fn assert_client_eq(a: &ClientWindow, b: &ClientWindow) {
    assert_eq!(a.reads, b.reads);
    assert_eq!(a.writes, b.writes);
    assert_eq!(a.metas, b.metas);
    assert_eq!(a.bytes_read, b.bytes_read);
    assert_eq!(a.bytes_written, b.bytes_written);
    assert_eq!(a.io_time, b.io_time);
    assert_eq!(a.ops, b.ops, "op attribution order diverged");
    assert_eq!(a.per_dev.len(), b.per_dev.len());
    for (x, y) in a.per_dev.iter().zip(&b.per_dev) {
        assert_eq!(
            (
                x.read_reqs,
                x.write_reqs,
                x.meta_reqs,
                x.bytes_read,
                x.bytes_written
            ),
            (
                y.read_reqs,
                y.write_reqs,
                y.meta_reqs,
                y.bytes_read,
                y.bytes_written
            )
        );
    }
}

/// Bit-level equality for the windowed server statistics: sum, mean,
/// and std must be the *same floats*, not merely close.
fn assert_server_eq(a: &ServerWindow, b: &ServerWindow) {
    assert_eq!(a.samples, b.samples);
    for (x, y) in a.series.iter().zip(&b.series) {
        assert_eq!(x.sum.to_bits(), y.sum.to_bits());
        assert_eq!(x.mean.to_bits(), y.mean.to_bits());
        assert_eq!(x.std.to_bits(), y.std.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn streaming_matches_batch_aggregation(
        ops in arb_ops(),
        cluster in (1u32..4).prop_flat_map(|n| (Just(n), arb_rpcs(n), arb_samples(n))),
    ) {
        let (n_devices, rpcs, samples) = cluster;
        let trace = build_trace(&ops, &rpcs, &samples);
        let cfg = WindowConfig::seconds(1);
        let fcfg = FeatureConfig::default();

        let batch_clients = client_windows(&trace, cfg, n_devices);
        let batch_servers = server_windows(&trace.samples.to_vec(), cfg);
        let emitted = stream_trace(&trace, cfg, n_devices);

        // Every streamed cell equals its batch counterpart, field for
        // field and bit for bit — and nothing exists on one side only.
        let mut client_cells = 0usize;
        let mut server_cells = 0usize;
        for ew in &emitted {
            for (app, cw) in &ew.clients {
                let b = &batch_clients[&(*app, ew.window)];
                assert_client_eq(cw, b);
                client_cells += 1;
            }
            for (dev, sw) in &ew.servers {
                let b = &batch_servers[&(*dev, ew.window)];
                assert_server_eq(sw, b);
                server_cells += 1;
            }
        }
        prop_assert_eq!(client_cells, batch_clients.len());
        prop_assert_eq!(server_cells, batch_servers.len());

        // Assembled feature vectors are byte-identical too: the block
        // the serving layer would feed the model equals the block the
        // training set was built from.
        for ew in &emitted {
            for (app, block, _avail) in ew.feature_blocks(fcfg, n_devices, cfg.window) {
                let client = batch_clients.get(&(app, ew.window));
                let mut batch_block = Vec::with_capacity(block.len());
                for d in 0..n_devices {
                    let dev = DeviceId(d);
                    batch_block.extend(server_vector(
                        fcfg,
                        client,
                        batch_servers.get(&(dev, ew.window)),
                        dev,
                        cfg.window,
                    ));
                }
                let streamed: Vec<u32> = block.iter().map(|f| f.to_bits()).collect();
                let batched: Vec<u32> = batch_block.iter().map(|f| f.to_bits()).collect();
                prop_assert_eq!(&streamed, &batched, "feature block bits diverged in window {}", ew.window);
            }
        }
    }
}
