//! Property-based tests for the budget-bounded adaptive sampler.
//!
//! Three contracts, over arbitrary per-device cumulative counter
//! series:
//!
//! - **Budget bound** — no `(device, window)` group ever keeps more
//!   than `budget` samples.
//! - **Budget monotonicity** — a larger budget keeps a superset: the
//!   smaller budget's output is an exact subsequence of the larger
//!   one's, so tightening the budget only ever *removes* samples.
//! - **Replay determinism** — the same config over the same stream is
//!   byte-identical, run after run.

use proptest::prelude::*;
use qi_monitor::sampler::{AdaptiveSampler, SamplerConfig};
use qi_monitor::window::WindowConfig;
use qi_pfs::ids::DeviceId;
use qi_pfs::ops::ServerSample;
use qi_pfs::queue::DeviceCounters;
use qi_simkit::time::SimTime;

/// Build a valid (time-sorted, cumulative-counter) sample stream from
/// per-tick activity deltas. `deltas[t][d] == 0` means device `d` was
/// idle over tick `t` — its cumulative counters repeat.
fn build_stream(deltas: &[Vec<u64>], tick_ms: u64) -> Vec<ServerSample> {
    let n_dev = deltas.first().map(Vec::len).unwrap_or(0);
    let mut cum = vec![DeviceCounters::default(); n_dev];
    let mut out = Vec::new();
    for (t, row) in deltas.iter().enumerate() {
        let time =
            SimTime::ZERO + qi_simkit::time::SimDuration::from_millis((t as u64 + 1) * tick_ms);
        for (d, &delta) in row.iter().enumerate() {
            cum[d].reads_completed += delta;
            cum[d].sectors_read += delta * 8;
            cum[d].busy_ns += delta * 1_000;
            out.push(ServerSample {
                time,
                dev: DeviceId(d as u32),
                counters: cum[d],
                dirty_bytes: 0,
                throttled_now: 0,
            });
        }
    }
    out
}

/// Activity grids: up to 40 ticks × up to 4 devices, sparse activity.
fn arb_deltas() -> impl Strategy<Value = Vec<Vec<u64>>> {
    (1usize..5).prop_flat_map(|n_dev| {
        prop::collection::vec(
            // 0..100 folded so that half the draws are exactly 0
            // (idle tick) — the vendored proptest has no prop_oneof.
            prop::collection::vec(
                (0u64..100).prop_map(|v| v.saturating_sub(50)),
                n_dev..=n_dev,
            ),
            1..40,
        )
    })
}

/// The window a sample belongs to, mirroring the sampler's boundary
/// semantics (a sample at an exact boundary closes the window ending
/// there).
fn window_of(wcfg: WindowConfig, s: &ServerSample) -> u64 {
    let t = s.time.as_nanos();
    if t == 0 {
        0
    } else {
        wcfg.index_of(SimTime(t - 1))
    }
}

proptest! {
    /// No `(device, window)` group ever exceeds the budget, and the
    /// accounting adds up.
    #[test]
    fn budget_is_never_exceeded(
        deltas in arb_deltas(),
        tick_ms in 50u64..1_500,
        window_s in 1u64..4,
        budget in 1u32..6,
        seed in 0u64..100,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let wcfg = WindowConfig::seconds(window_s);
        let cfg = SamplerConfig { budget, quiet_keep: 1, seed };
        let (kept, stats) = AdaptiveSampler::run(cfg, wcfg, stream.clone());
        prop_assert_eq!(stats.seen as usize, stream.len());
        prop_assert_eq!(stats.kept as usize, kept.len());
        let mut counts = std::collections::HashMap::new();
        for s in &kept {
            let k = (s.dev.0, window_of(wcfg, s));
            *counts.entry(k).or_insert(0u32) += 1;
        }
        for ((dev, win), c) in counts {
            prop_assert!(
                c <= budget,
                "device {dev} window {win} kept {c} > budget {budget}"
            );
        }
    }

    /// A larger budget keeps a superset: the tighter run's output is an
    /// exact ordered subsequence of the looser run's.
    #[test]
    fn larger_budget_keeps_a_superset(
        deltas in arb_deltas(),
        tick_ms in 50u64..1_500,
        window_s in 1u64..4,
        small in 1u32..5,
        extra in 0u32..5,
        seed in 0u64..100,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let wcfg = WindowConfig::seconds(window_s);
        let tight = SamplerConfig { budget: small, quiet_keep: 1, seed };
        let loose = SamplerConfig { budget: small + extra, quiet_keep: 1, seed };
        let (kept_tight, _) = AdaptiveSampler::run(tight, wcfg, stream.clone());
        let (kept_loose, _) = AdaptiveSampler::run(loose, wcfg, stream);
        // Subsequence check: every tight sample appears, in order, in
        // the loose output.
        let mut it = kept_loose.iter();
        for s in &kept_tight {
            prop_assert!(
                it.any(|l| l == s),
                "budget {} kept a sample budget {} dropped",
                small,
                small + extra
            );
        }
    }

    /// Same seed, same stream → byte-identical output and stats.
    #[test]
    fn replay_is_deterministic(
        deltas in arb_deltas(),
        tick_ms in 50u64..1_500,
        window_s in 1u64..4,
        budget in 1u32..6,
        quiet_keep in 1u32..3,
        seed in 0u64..100,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let wcfg = WindowConfig::seconds(window_s);
        let cfg = SamplerConfig { budget, quiet_keep, seed };
        let (a, sa) = AdaptiveSampler::run(cfg, wcfg, stream.clone());
        let (b, sb) = AdaptiveSampler::run(cfg, wcfg, stream);
        prop_assert_eq!(a, b);
        prop_assert_eq!(sa, sb);
    }

    /// The unbounded budget is a strict pass-through regardless of how
    /// quiet the stream is.
    #[test]
    fn unbounded_budget_passes_everything_through(
        deltas in arb_deltas(),
        tick_ms in 50u64..1_500,
        window_s in 1u64..4,
        seed in 0u64..100,
    ) {
        let stream = build_stream(&deltas, tick_ms);
        let wcfg = WindowConfig::seconds(window_s);
        let cfg = SamplerConfig { budget: u32::MAX, quiet_keep: 1, seed };
        let (kept, stats) = AdaptiveSampler::run(cfg, wcfg, stream.clone());
        prop_assert_eq!(kept, stream);
        prop_assert_eq!(stats.dropped(), 0);
    }
}
