//! Server-side monitor (paper §III-B, Table II).
//!
//! The simulator samples each device's cumulative counters once per
//! second (like reading `/proc/diskstats` on a Lustre server). This
//! module turns those samples into per-window metric blocks: for every
//! Table II metric, the per-second *deltas* inside a window are reduced
//! to sum / mean / standard deviation, exactly as the paper describes.

use std::collections::HashMap;

use qi_pfs::ids::DeviceId;
use qi_pfs::ops::ServerSample;

use crate::features::FeatureConfig;
use crate::pipeline::FeaturePipeline;
use crate::window::WindowConfig;

/// Names of the per-second series derived from device counters, in the
/// order they appear in [`ServerWindow::series`].
pub const SERVER_SERIES: [&str; 9] = [
    "completed_reqs", // Table II: I/O speed
    "sectors_read",   // Table II: device metrics
    "sectors_written",
    "enqueued",       // Table II: queue (1) requests queued
    "merges",         // Table II: queue (2) merged requests
    "wait_time_ms",   // Table II: queue (3) summed queue wait
    "queue_depth_ms", // Table II: queue (4) depth·time integral
    "busy_ms",        // device utilisation (time the media was busy)
    "dirty_mb",       // cache pressure (server write-back state)
];

/// Number of per-second series per server.
pub const N_SERVER_SERIES: usize = SERVER_SERIES.len();

/// sum / mean / std of one per-second series over a window.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeriesStats {
    /// Sum of per-second values.
    pub sum: f64,
    /// Mean per-second value.
    pub mean: f64,
    /// Population standard deviation of per-second values.
    pub std: f64,
}

/// Server-side metrics for one `(device, window)` cell.
#[derive(Clone, Debug, Default)]
pub struct ServerWindow {
    /// One [`SeriesStats`] per entry of [`SERVER_SERIES`].
    pub series: [SeriesStats; N_SERVER_SERIES],
    /// Seconds of data the window actually contained.
    pub samples: u32,
}

/// Per-second deltas between two consecutive samples of one device
/// (exposed for the streaming monitor).
pub fn delta_series_pub(prev: &ServerSample, cur: &ServerSample) -> [f64; N_SERVER_SERIES] {
    delta_series(prev, cur)
}

fn delta_series(prev: &ServerSample, cur: &ServerSample) -> [f64; N_SERVER_SERIES] {
    let p = &prev.counters;
    let c = &cur.counters;
    [
        ((c.reads_completed + c.writes_completed) - (p.reads_completed + p.writes_completed))
            as f64,
        (c.sectors_read - p.sectors_read) as f64,
        (c.sectors_written - p.sectors_written) as f64,
        (c.enqueued - p.enqueued) as f64,
        ((c.read_merges + c.write_merges) - (p.read_merges + p.write_merges)) as f64,
        (c.wait_ns - p.wait_ns) as f64 / 1e6,
        (c.weighted_depth_ns - p.weighted_depth_ns) as f64 / 1e6,
        (c.busy_ns - p.busy_ns) as f64 / 1e6,
        cur.dirty_bytes as f64 / 1e6, // level, not delta
    ]
}

/// Reduce a run's per-second server samples to per-(device, window)
/// metric blocks.
///
/// This is a thin batch adapter over the streaming
/// [`FeaturePipeline`]: the per-device consecutive-sample deltas and
/// the per-window sum/mean/std reduction are computed by the same
/// engine the serving layer streams through, so batch and streaming
/// results are byte-identical.
pub fn server_windows(
    samples: &[ServerSample],
    cfg: WindowConfig,
) -> HashMap<(DeviceId, u64), ServerWindow> {
    let pipeline = FeaturePipeline::new(cfg, FeatureConfig::default(), 0);
    let mut out = HashMap::new();
    for ew in pipeline.run_streams(&[], &[], samples) {
        for (dev, cell) in ew.servers {
            out.insert((dev, ew.window), cell);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::queue::DeviceCounters;
    use qi_simkit::time::SimTime;

    fn sample(dev: u32, sec: u64, reads: u64, sectors: u64) -> ServerSample {
        ServerSample {
            time: SimTime::from_secs(sec),
            dev: DeviceId(dev),
            counters: DeviceCounters {
                reads_completed: reads,
                sectors_read: sectors,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        }
    }

    #[test]
    fn deltas_are_per_second_differences() {
        let samples = vec![
            sample(0, 1, 10, 100),
            sample(0, 2, 30, 400),
            sample(0, 3, 60, 1000),
        ];
        let w = server_windows(&samples, WindowConfig::seconds(10));
        let cell = &w[&(DeviceId(0), 0)];
        assert_eq!(cell.samples, 2);
        // completed: deltas 20 and 30.
        assert_eq!(cell.series[0].sum, 50.0);
        assert_eq!(cell.series[0].mean, 25.0);
        assert!((cell.series[0].std - 5.0).abs() < 1e-9);
        // sectors read: deltas 300 and 600.
        assert_eq!(cell.series[1].sum, 900.0);
    }

    #[test]
    fn windows_split_at_boundaries() {
        let samples = vec![
            sample(0, 1, 1, 0),
            sample(0, 2, 2, 0),
            sample(0, 3, 3, 0),
            sample(0, 4, 4, 0),
        ];
        let w = server_windows(&samples, WindowConfig::seconds(2));
        // Intervals ending at 2s → window 0; at 3s,4s → window 1.
        assert_eq!(w[&(DeviceId(0), 0)].samples, 1);
        assert_eq!(w[&(DeviceId(0), 1)].samples, 2);
    }

    #[test]
    fn devices_do_not_mix() {
        let samples = vec![
            sample(0, 1, 0, 0),
            sample(1, 1, 0, 0),
            sample(0, 2, 5, 0),
            sample(1, 2, 7, 0),
        ];
        let w = server_windows(&samples, WindowConfig::seconds(5));
        assert_eq!(w[&(DeviceId(0), 0)].series[0].sum, 5.0);
        assert_eq!(w[&(DeviceId(1), 0)].series[0].sum, 7.0);
    }

    #[test]
    fn series_names_match_layout() {
        assert_eq!(SERVER_SERIES.len(), N_SERVER_SERIES);
        assert_eq!(SERVER_SERIES[0], "completed_reqs");
        assert_eq!(SERVER_SERIES[7], "busy_ms");
        assert_eq!(SERVER_SERIES[8], "dirty_mb");
    }
}
