//! Budget-bounded adaptive downsampling of the server-sample stream.
//!
//! Uniform full-rate sampling of every device is mostly waste on real
//! clusters: I/O is bursty, and a quiet device's samples repeat the
//! previous ones (cumulative counters frozen). [`AdaptiveSampler`] sits
//! between the raw per-device series and the ingest path, keeping every
//! sample of a device-window that showed *activity* (any counter delta,
//! cache dirt, or throttling) — or while an external alert, e.g. a high
//! anomaly score, is raised — and only `quiet_keep` samples otherwise.
//!
//! Determinism and budget discipline, as pinned by the property suite:
//!
//! - **Replayable** — decisions depend only on the configuration and
//!   the sample stream; same seed, same stream → byte-identical output.
//! - **Budget-bounded** — at most `budget` samples survive per
//!   `(device, window)`.
//! - **Monotone in budget** — selection within a window is "always
//!   keep the newest and oldest, then lowest deterministic priority
//!   first", so the kept set under a smaller budget is a subset of the
//!   kept set under a larger one, and `budget == u32::MAX` keeps
//!   everything (which makes sampler-off ≡ unbounded-budget exact).
//! - **Activity is judged on every *seen* sample, never on the kept
//!   subset** — so raising the budget never changes quiet/active
//!   classification, only how much of a window survives.
//!
//! Because a quiet window's deltas are all zero, dropping its samples
//! (keeping at least one so the server block still exists) leaves every
//! windowed sum/mean/std feature bit-unchanged: ingest shrinks at zero
//! feature drift, the gate `benches/anomaly_scale.rs` enforces.

use qi_pfs::ops::ServerSample;
use qi_telemetry::{MetricValue, MetricsSnapshot};

use crate::window::WindowConfig;

/// Adaptive-sampler policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Maximum samples kept per `(device, window)`; `u32::MAX` keeps
    /// every sample (the sampler becomes a no-op pass-through).
    pub budget: u32,
    /// Samples kept per quiet `(device, window)` (clamped to `budget`).
    /// Keep this ≥ 1 so downstream feature extraction still sees the
    /// device's server block in every window.
    pub quiet_keep: u32,
    /// Seed of the deterministic keep-priority hash.
    pub seed: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            budget: u32::MAX,
            quiet_keep: 1,
            seed: 0,
        }
    }
}

/// Cumulative ingest accounting (also exported as telemetry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplerStats {
    /// Samples offered to the sampler.
    pub seen: u64,
    /// Samples kept (released downstream).
    pub kept: u64,
    /// Device-windows classified active (full rate).
    pub active_windows: u64,
    /// Device-windows classified quiet (downsampled).
    pub quiet_windows: u64,
    /// Device-windows kept at full rate because an alert was raised.
    pub alert_windows: u64,
}

impl SamplerStats {
    /// Samples dropped.
    pub fn dropped(&self) -> u64 {
        self.seen - self.kept
    }

    /// Fraction of ingest saved, in `[0, 1]`.
    pub fn savings(&self) -> f64 {
        if self.seen == 0 {
            0.0
        } else {
            self.dropped() as f64 / self.seen as f64
        }
    }

    /// Telemetry rendering of the counters (`monitor.sampler.*`
    /// namespace) — the same snapshot a live [`AdaptiveSampler`]
    /// exports, so batch callers of [`AdaptiveSampler::run`] can fold
    /// sampler accounting into their own artefacts.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put("monitor.sampler.seen", MetricValue::Counter(self.seen));
        snap.put("monitor.sampler.kept", MetricValue::Counter(self.kept));
        snap.put(
            "monitor.sampler.dropped",
            MetricValue::Counter(self.dropped()),
        );
        snap.put(
            "monitor.sampler.active_windows",
            MetricValue::Counter(self.active_windows),
        );
        snap.put(
            "monitor.sampler.quiet_windows",
            MetricValue::Counter(self.quiet_windows),
        );
        snap.put(
            "monitor.sampler.alert_windows",
            MetricValue::Counter(self.alert_windows),
        );
        snap
    }
}

/// One buffered sample awaiting its window's close.
#[derive(Clone, Copy, Debug)]
struct Pending {
    sample: ServerSample,
    /// Arrival order within the run (keeps emission stable).
    arrival: u64,
}

/// SplitMix64-style avalanche for the keep-priority hash.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The streaming downsampler. Push samples in nondecreasing time order;
/// each push (and the final [`AdaptiveSampler::finish`]) returns the
/// samples released by any windows that closed, in arrival order.
#[derive(Clone, Debug)]
pub struct AdaptiveSampler {
    cfg: SamplerConfig,
    wcfg: WindowConfig,
    /// Window currently buffering.
    current: u64,
    /// Buffered samples of the current window, in arrival order.
    pending: Vec<Pending>,
    /// Devices (by index) that showed activity in the current window.
    active_now: Vec<bool>,
    /// Last sample ever seen per device index (across windows), for
    /// delta-based activity detection on the full seen stream.
    last_seen: Vec<Option<ServerSample>>,
    /// External alert (e.g. anomaly score above threshold): keep every
    /// device at full rate while raised.
    alert: bool,
    arrivals: u64,
    stats: SamplerStats,
}

impl AdaptiveSampler {
    /// New sampler aggregating on `wcfg` windows.
    pub fn new(cfg: SamplerConfig, wcfg: WindowConfig) -> Self {
        AdaptiveSampler {
            cfg,
            wcfg,
            current: 0,
            pending: Vec::new(),
            active_now: Vec::new(),
            last_seen: Vec::new(),
            alert: false,
            arrivals: 0,
            stats: SamplerStats::default(),
        }
    }

    /// Raise or clear the external alert. While raised, every
    /// device-window closing is kept at full rate (budget), restoring
    /// full observability the moment the anomaly score crosses its
    /// threshold.
    pub fn set_alert(&mut self, on: bool) {
        self.alert = on;
    }

    /// Whether the external alert is currently raised.
    pub fn alert(&self) -> bool {
        self.alert
    }

    /// Cumulative accounting.
    pub fn stats(&self) -> SamplerStats {
        self.stats
    }

    /// Telemetry snapshot of the sampler counters
    /// (`monitor.sampler.*` namespace).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.stats.metrics_snapshot()
    }

    /// The window a sample at `t` belongs to — the window its delta
    /// lands in downstream: a sample at an exact boundary describes the
    /// interval *ending* there (matching `FeaturePipeline`'s
    /// boundary-tie semantics).
    fn window_of(&self, s: &ServerSample) -> u64 {
        let t = s.time.as_nanos();
        if t == 0 {
            0
        } else {
            self.wcfg.index_of(qi_simkit::time::SimTime(t - 1))
        }
    }

    /// Offer one sample (nondecreasing time order). Returns the samples
    /// released by windows that closed before it.
    pub fn push(&mut self, s: ServerSample) -> Vec<ServerSample> {
        let w = self.window_of(&s);
        let mut out = Vec::new();
        if w > self.current {
            self.flush_into(&mut out);
            self.current = w;
        }
        self.stats.seen += 1;
        let di = s.dev.index();
        if di >= self.last_seen.len() {
            self.last_seen.resize(di + 1, None);
            self.active_now.resize(di + 1, false);
        }
        // Activity: any counter motion against the previous *seen*
        // sample of this device, or visible cache pressure. Judged on
        // the full stream so classification is budget-independent.
        let moved = match &self.last_seen[di] {
            Some(prev) => prev.counters != s.counters,
            // First sighting: nonzero cumulative counters mean the
            // device was already active.
            None => s.counters != Default::default(),
        };
        if moved || s.dirty_bytes > 0 || s.throttled_now > 0 {
            self.active_now[di] = true;
        }
        self.last_seen[di] = Some(s);
        self.pending.push(Pending {
            sample: s,
            arrival: self.arrivals,
        });
        self.arrivals += 1;
        out
    }

    /// Close the stream, releasing the final window.
    pub fn finish(mut self) -> (Vec<ServerSample>, SamplerStats) {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        (out, self.stats)
    }

    /// Run the whole policy over a finished stream.
    pub fn run(
        cfg: SamplerConfig,
        wcfg: WindowConfig,
        samples: impl IntoIterator<Item = ServerSample>,
    ) -> (Vec<ServerSample>, SamplerStats) {
        let mut sampler = AdaptiveSampler::new(cfg, wcfg);
        let mut out = Vec::new();
        for s in samples {
            out.extend(sampler.push(s));
        }
        let (tail, stats) = sampler.finish();
        out.extend(tail);
        (out, stats)
    }

    /// Deterministic keep priority of one sample: lower survives longer.
    fn priority(&self, s: &ServerSample) -> u64 {
        mix64(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((s.dev.0 as u64) << 1) ^ 0x5851_F42D_4C95_7F2D)
                .wrapping_add(s.time.as_nanos().rotate_left(17)),
        )
    }

    /// Seal the current window: per device, decide its rate and keep
    /// the surviving samples, released in arrival order.
    fn flush_into(&mut self, out: &mut Vec<ServerSample>) {
        if self.pending.is_empty() {
            for a in &mut self.active_now {
                *a = false;
            }
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        // Group by device, preserving arrival order within each group.
        let n_dev = self.active_now.len();
        let mut by_dev: Vec<Vec<Pending>> = vec![Vec::new(); n_dev];
        for p in pending {
            by_dev[p.sample.dev.index()].push(p);
        }
        let mut kept: Vec<Pending> = Vec::new();
        for (di, group) in by_dev.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let full_rate = self.alert || self.active_now[di];
            if self.alert {
                self.stats.alert_windows += 1;
            }
            if full_rate {
                self.stats.active_windows += 1;
            } else {
                self.stats.quiet_windows += 1;
            }
            // An unbounded budget disables the policy outright — the
            // documented sampler-off equivalence.
            let target = if self.cfg.budget == u32::MAX || full_rate {
                self.cfg.budget
            } else {
                self.cfg.quiet_keep.min(self.cfg.budget)
            } as usize;
            if group.len() <= target {
                kept.extend(group);
                continue;
            }
            // Nested-in-budget selection: the newest sample first, then
            // the oldest, then lowest priority hash — each prefix of
            // this fixed ranking is the kept set of a smaller budget.
            let mut ranked: Vec<usize> = Vec::with_capacity(group.len());
            ranked.push(group.len() - 1);
            if group.len() > 1 {
                ranked.push(0);
            }
            let mut middle: Vec<usize> = (1..group.len() - 1).collect();
            middle.sort_by_key(|&i| (self.priority(&group[i].sample), i));
            ranked.extend(middle);
            ranked.truncate(target);
            kept.extend(ranked.into_iter().map(|i| group[i]));
        }
        kept.sort_by_key(|p| p.arrival);
        self.stats.kept += kept.len() as u64;
        out.extend(kept.into_iter().map(|p| p.sample));
        for a in &mut self.active_now {
            *a = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::DeviceId;
    use qi_pfs::queue::DeviceCounters;
    use qi_simkit::time::SimTime;

    fn sample(ms: u64, dev: u32, reads: u64) -> ServerSample {
        ServerSample {
            time: SimTime::from_millis(ms),
            dev: DeviceId(dev),
            counters: DeviceCounters {
                reads_completed: reads,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        }
    }

    /// 10 samples per 1 s window per device; device 0 quiet, device 1
    /// counting up.
    fn stream(windows: u64) -> Vec<ServerSample> {
        let mut out = Vec::new();
        for t in 1..=windows * 10 {
            out.push(sample(t * 100, 0, 0));
            out.push(sample(t * 100, 1, t));
        }
        out
    }

    #[test]
    fn unbounded_budget_is_a_pass_through() {
        let input = stream(3);
        let (out, stats) = AdaptiveSampler::run(
            SamplerConfig::default(),
            WindowConfig::seconds(1),
            input.clone(),
        );
        assert_eq!(out, input);
        assert_eq!(stats.kept, stats.seen);
        assert_eq!(stats.savings(), 0.0);
    }

    #[test]
    fn quiet_devices_downsample_active_keep_full_rate() {
        let cfg = SamplerConfig {
            budget: 64,
            quiet_keep: 1,
            seed: 7,
        };
        let input = stream(4);
        let (out, stats) = AdaptiveSampler::run(cfg, WindowConfig::seconds(1), input);
        let quiet: Vec<_> = out.iter().filter(|s| s.dev == DeviceId(0)).collect();
        let active: Vec<_> = out.iter().filter(|s| s.dev == DeviceId(1)).collect();
        assert_eq!(quiet.len(), 4, "one survivor per quiet window");
        assert_eq!(active.len(), 40, "active device untouched");
        assert_eq!(stats.quiet_windows, 4);
        assert_eq!(stats.active_windows, 4);
        assert!(stats.savings() > 0.4, "{}", stats.savings());
    }

    #[test]
    fn budget_caps_even_active_windows() {
        let cfg = SamplerConfig {
            budget: 3,
            quiet_keep: 1,
            seed: 1,
        };
        let (out, _) = AdaptiveSampler::run(cfg, WindowConfig::seconds(1), stream(2));
        for w in 0..2u64 {
            for d in 0..2u32 {
                let n = out
                    .iter()
                    .filter(|s| {
                        s.dev == DeviceId(d) && (s.time.as_nanos() - 1) / 1_000_000_000 == w
                    })
                    .count();
                assert!(n <= 3, "window {w} dev {d}: {n} kept");
            }
        }
    }

    #[test]
    fn alert_restores_full_rate() {
        let cfg = SamplerConfig {
            budget: 64,
            quiet_keep: 1,
            seed: 3,
        };
        let mut sampler = AdaptiveSampler::new(cfg, WindowConfig::seconds(1));
        sampler.set_alert(true);
        let mut out = Vec::new();
        for s in stream(2) {
            out.extend(sampler.push(s));
        }
        let stats_mid = sampler.stats();
        let (tail, stats) = sampler.finish();
        out.extend(tail);
        assert_eq!(out.len(), 40, "alert keeps everything");
        assert!(stats.alert_windows >= stats_mid.alert_windows);
        assert_eq!(stats.quiet_windows, 0);
    }

    #[test]
    fn replay_is_byte_identical() {
        let cfg = SamplerConfig {
            budget: 4,
            quiet_keep: 2,
            seed: 99,
        };
        let a = AdaptiveSampler::run(cfg, WindowConfig::seconds(1), stream(5));
        let b = AdaptiveSampler::run(cfg, WindowConfig::seconds(1), stream(5));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn telemetry_namespace_is_sampler_scoped() {
        let (_, _) = AdaptiveSampler::run(
            SamplerConfig::default(),
            WindowConfig::seconds(1),
            stream(1),
        );
        let mut sampler = AdaptiveSampler::new(SamplerConfig::default(), WindowConfig::seconds(1));
        for s in stream(1) {
            sampler.push(s);
        }
        let snap = sampler.metrics_snapshot();
        assert_eq!(snap.counter("monitor.sampler.seen"), Some(20));
        assert!(snap.counter("monitor.sampler.kept").is_some());
        assert!(snap.counter("monitor.sampler.dropped").is_some());
    }
}
