//! Per-server feature vectors (paper §III-C).
//!
//! For every `(application, window)` the training server builds one
//! vector *per storage server*, concatenating:
//!
//! 1. the application's window-global client metrics (§III-A list),
//! 2. the client metrics *targeting that server*, and
//! 3. the server's own window metrics (Table II, sum/mean/std).
//!
//! The same dense "kernel" network is applied to each server's vector,
//! so the layout here must be identical for every server — that is what
//! lets the model generalise across OSTs.

use qi_pfs::ids::DeviceId;
use qi_simkit::time::SimDuration;

use crate::client::ClientWindow;
use crate::server::{ServerWindow, N_SERVER_SERIES, SERVER_SERIES};

/// Number of window-global client features.
pub const N_CLIENT_GLOBAL: usize = 10;
/// Number of per-server client-targeting features.
pub const N_CLIENT_TARGET: usize = 5;
/// Number of server-side features (sum/mean/std per series).
pub const N_SERVER: usize = N_SERVER_SERIES * 3;
/// Total features in one per-server vector.
pub const N_FEATURES: usize = N_CLIENT_GLOBAL + N_CLIENT_TARGET + N_SERVER;

/// Which feature blocks to include (used by the feature-ablation bench
/// and keyed on by [`crate::schema::FeatureSchema`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FeatureConfig {
    /// Include blocks 1 and 2 (client-side metrics).
    pub client: bool,
    /// Include block 3 (server-side metrics).
    pub server: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            client: true,
            server: true,
        }
    }
}

impl FeatureConfig {
    /// Vector length under this configuration.
    pub const fn len(&self) -> usize {
        let mut n = 0;
        if self.client {
            n += N_CLIENT_GLOBAL + N_CLIENT_TARGET;
        }
        if self.server {
            n += N_SERVER;
        }
        n
    }

    /// True when no block is enabled.
    pub const fn is_empty(&self) -> bool {
        !self.client && !self.server
    }
}

/// Human-readable names of the features, in vector order.
pub fn feature_names(cfg: FeatureConfig) -> Vec<String> {
    let mut names = Vec::with_capacity(cfg.len());
    if cfg.client {
        for n in [
            "cl_reads",
            "cl_writes",
            "cl_metas",
            "cl_total_ops",
            "cl_read_mb",
            "cl_write_mb",
            "cl_total_mb",
            "cl_io_time_ms",
            "cl_throughput_mbps",
            "cl_iops",
        ] {
            names.push(n.to_string());
        }
        for n in [
            "tgt_read_reqs",
            "tgt_write_reqs",
            "tgt_meta_reqs",
            "tgt_read_mb",
            "tgt_write_mb",
        ] {
            names.push(n.to_string());
        }
    }
    if cfg.server {
        for series in SERVER_SERIES {
            for stat in ["sum", "mean", "std"] {
                names.push(format!("srv_{series}_{stat}"));
            }
        }
    }
    names
}

/// Which feature blocks were actually backed by monitor data in one
/// per-server vector. Under an injected fault (or a monitoring gap) a
/// window can lose its client block, its server block, or both; this
/// mask makes that explicit instead of silently encoding "no data" and
/// "measured zero" the same way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeatureAvailability {
    /// The client window existed (blocks 1 and 2 are measurements).
    pub client: bool,
    /// The server window existed (block 3 is a measurement).
    pub server: bool,
}

impl FeatureAvailability {
    /// True when every enabled block was backed by data.
    pub fn is_complete(&self, cfg: FeatureConfig) -> bool {
        (!cfg.client || self.client) && (!cfg.server || self.server)
    }
}

/// How to fill feature cells whose monitor data is missing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Imputation {
    /// Missing blocks become zeros (the historical behaviour).
    #[default]
    Zero,
    /// Missing *server* blocks are imputed from the per-device mean of
    /// the windows that do have server data (client blocks still zero:
    /// a missing client window genuinely means "no client activity
    /// observed"). Applied by the dataset assembly layer, which owns the
    /// cross-window view needed to compute the means.
    DeviceMean,
}

impl Imputation {
    /// Stable one-word token, used by the QIMODEL schema section.
    pub const fn token(self) -> &'static str {
        match self {
            Imputation::Zero => "zero",
            Imputation::DeviceMean => "device_mean",
        }
    }

    /// Inverse of [`Imputation::token`].
    pub fn from_token(s: &str) -> Option<Self> {
        match s {
            "zero" => Some(Imputation::Zero),
            "device_mean" => Some(Imputation::DeviceMean),
            _ => None,
        }
    }
}

/// Build the feature vector for one server, given the application's
/// client window (if it had any activity) and the server's window (if
/// any samples landed there). Missing cells contribute zeros.
pub fn server_vector(
    cfg: FeatureConfig,
    client: Option<&ClientWindow>,
    server: Option<&ServerWindow>,
    dev: DeviceId,
    window: SimDuration,
) -> Vec<f32> {
    server_vector_masked(cfg, client, server, dev, window).0
}

/// Like [`server_vector`], but also report which blocks were backed by
/// real monitor data — callers that need to degrade gracefully (fault
/// plans, monitoring gaps) use the mask to distinguish measured zeros
/// from absent data and to drive [`Imputation`].
pub fn server_vector_masked(
    cfg: FeatureConfig,
    client: Option<&ClientWindow>,
    server: Option<&ServerWindow>,
    dev: DeviceId,
    window: SimDuration,
) -> (Vec<f32>, FeatureAvailability) {
    let avail = FeatureAvailability {
        client: client.is_some(),
        server: server.is_some(),
    };
    let mut v = Vec::with_capacity(cfg.len());
    if cfg.client {
        match client {
            Some(c) => {
                v.push(c.reads as f32);
                v.push(c.writes as f32);
                v.push(c.metas as f32);
                v.push(c.total_ops() as f32);
                v.push(c.bytes_read as f32 / 1e6);
                v.push(c.bytes_written as f32 / 1e6);
                v.push(c.total_bytes() as f32 / 1e6);
                v.push(c.io_time.as_millis_f64() as f32);
                v.push((c.throughput(window) / 1e6) as f32);
                v.push(c.iops(window) as f32);
                let t = c.per_dev.get(dev.index()).copied().unwrap_or_default();
                v.push(t.read_reqs as f32);
                v.push(t.write_reqs as f32);
                v.push(t.meta_reqs as f32);
                v.push(t.bytes_read as f32 / 1e6);
                v.push(t.bytes_written as f32 / 1e6);
            }
            None => v.extend(std::iter::repeat_n(0.0, N_CLIENT_GLOBAL + N_CLIENT_TARGET)),
        }
    }
    if cfg.server {
        match server {
            Some(s) => {
                for ss in &s.series {
                    v.push(ss.sum as f32);
                    v.push(ss.mean as f32);
                    v.push(ss.std as f32);
                }
            }
            None => v.extend(std::iter::repeat_n(0.0, N_SERVER)),
        }
    }
    debug_assert_eq!(v.len(), cfg.len());
    (v, avail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::DevTargeting;
    use crate::server::SeriesStats;

    #[test]
    fn full_vector_has_documented_length() {
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.len(), N_FEATURES);
        assert_eq!(feature_names(cfg).len(), N_FEATURES);
        let v = server_vector(cfg, None, None, DeviceId(0), SimDuration::from_secs(1));
        assert_eq!(v.len(), N_FEATURES);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn ablation_lengths() {
        let client_only = FeatureConfig {
            client: true,
            server: false,
        };
        let server_only = FeatureConfig {
            client: false,
            server: true,
        };
        assert_eq!(client_only.len(), N_CLIENT_GLOBAL + N_CLIENT_TARGET);
        assert_eq!(server_only.len(), N_SERVER);
        assert_eq!(client_only.len() + server_only.len(), N_FEATURES);
        assert!(!client_only.is_empty());
    }

    #[test]
    fn client_values_land_in_order() {
        let mut cw = ClientWindow {
            reads: 3,
            bytes_read: 2_000_000,
            per_dev: vec![DevTargeting::default(); 2],
            ..ClientWindow::default()
        };
        cw.per_dev[1].read_reqs = 5;
        cw.per_dev[1].bytes_read = 1_000_000;
        let v = server_vector(
            FeatureConfig::default(),
            Some(&cw),
            None,
            DeviceId(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(v[0], 3.0); // cl_reads
        assert_eq!(v[4], 2.0); // cl_read_mb
        assert_eq!(v[10], 5.0); // tgt_read_reqs
        assert_eq!(v[13], 1.0); // tgt_read_mb
    }

    #[test]
    fn server_values_land_after_client_block() {
        let mut sw = ServerWindow::default();
        sw.series[0] = SeriesStats {
            sum: 11.0,
            mean: 5.5,
            std: 1.5,
        };
        let v = server_vector(
            FeatureConfig::default(),
            None,
            Some(&sw),
            DeviceId(0),
            SimDuration::from_secs(1),
        );
        let base = N_CLIENT_GLOBAL + N_CLIENT_TARGET;
        assert_eq!(v[base], 11.0);
        assert_eq!(v[base + 1], 5.5);
        assert_eq!(v[base + 2], 1.5);
    }

    #[test]
    fn availability_mask_tracks_missing_blocks() {
        let cfg = FeatureConfig::default();
        let w = SimDuration::from_secs(1);
        let (_, a) = server_vector_masked(cfg, None, None, DeviceId(0), w);
        assert_eq!(
            a,
            FeatureAvailability {
                client: false,
                server: false
            }
        );
        assert!(!a.is_complete(cfg));
        let cw = ClientWindow::default();
        let (_, a) = server_vector_masked(cfg, Some(&cw), None, DeviceId(0), w);
        assert!(a.client && !a.server);
        // A disabled block cannot make a vector incomplete.
        assert!(a.is_complete(FeatureConfig {
            client: true,
            server: false
        }));
        let sw = ServerWindow::default();
        let (_, a) = server_vector_masked(cfg, Some(&cw), Some(&sw), DeviceId(0), w);
        assert!(a.is_complete(cfg));
    }

    #[test]
    fn config_is_const_evaluable_and_hashable() {
        const FULL: usize = FeatureConfig {
            client: true,
            server: true,
        }
        .len();
        const EMPTY: bool = FeatureConfig {
            client: false,
            server: false,
        }
        .is_empty();
        assert_eq!(FULL, N_FEATURES);
        const { assert!(EMPTY) };
        let mut set = std::collections::HashSet::new();
        set.insert((FeatureConfig::default(), Imputation::DeviceMean));
        assert!(set.contains(&(FeatureConfig::default(), Imputation::DeviceMean)));
    }

    #[test]
    fn imputation_tokens_round_trip() {
        for imp in [Imputation::Zero, Imputation::DeviceMean] {
            assert_eq!(Imputation::from_token(imp.token()), Some(imp));
        }
        assert_eq!(Imputation::from_token("bogus"), None);
    }

    #[test]
    fn out_of_range_device_targets_zero() {
        let cw = ClientWindow::default(); // per_dev empty
        let v = server_vector(
            FeatureConfig::default(),
            Some(&cw),
            None,
            DeviceId(5),
            SimDuration::from_secs(1),
        );
        assert_eq!(v[10], 0.0);
    }
}
