//! Time-window indexing shared by both monitors.

use qi_simkit::time::{SimDuration, SimTime};

/// Window configuration: the aggregation period used by both the
/// client-side and server-side monitors (paper: "a user-defined time
/// window size").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WindowConfig {
    /// Window length.
    pub window: SimDuration,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: SimDuration::from_secs(1),
        }
    }
}

impl WindowConfig {
    /// A window of `secs` seconds.
    pub fn seconds(secs: u64) -> Self {
        WindowConfig {
            window: SimDuration::from_secs(secs),
        }
    }

    /// A window of `ms` milliseconds — sub-second windows give an online
    /// controller several decision points within a short target run.
    pub fn millis(ms: u64) -> Self {
        WindowConfig {
            window: SimDuration::from_millis(ms),
        }
    }

    /// Index of the window containing instant `t` (0-based).
    pub fn index_of(&self, t: SimTime) -> u64 {
        debug_assert!(self.window.as_nanos() > 0);
        t.as_nanos() / self.window.as_nanos()
    }

    /// Number of whole windows fully contained in `[0, end)`.
    pub fn count_until(&self, end: SimTime) -> u64 {
        end.as_nanos() / self.window.as_nanos()
    }

    /// Start instant of window `w`.
    pub fn start_of(&self, w: u64) -> SimTime {
        SimTime(w * self.window.as_nanos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_of_is_floor_division() {
        let w = WindowConfig::seconds(2);
        assert_eq!(w.index_of(SimTime::ZERO), 0);
        assert_eq!(w.index_of(SimTime::from_millis(1999)), 0);
        assert_eq!(w.index_of(SimTime::from_millis(2000)), 1);
        assert_eq!(w.index_of(SimTime::from_secs(9)), 4);
    }

    #[test]
    fn count_and_start_round_trip() {
        let w = WindowConfig::seconds(3);
        assert_eq!(w.count_until(SimTime::from_secs(9)), 3);
        assert_eq!(w.count_until(SimTime::from_secs(10)), 3);
        assert_eq!(w.start_of(2), SimTime::from_secs(6));
    }
}
