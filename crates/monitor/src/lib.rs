//! # qi-monitor
//!
//! The paper's two runtime monitors, reimplemented over simulator traces:
//!
//! - [`pipeline`] — the **one** featurization path: the incremental
//!   [`FeaturePipeline`] (windowing → accumulation → vector assembly)
//!   that both the batch entry points and the online serving layer
//!   drive, so training and serving cannot drift apart.
//! - [`schema`] — the versioned [`FeatureSchema`] describing a
//!   pipeline's vector layout, embedded in trained models and
//!   validated when a model is bound to a pipeline.
//! - [`client`] — the modified-Darshan client-side monitor: per-app,
//!   per-window request counts, byte totals, I/O time, throughput/IOPS,
//!   and per-server targeting (paper §III-A). `client_windows` is a
//!   batch adapter over the pipeline.
//! - [`server`] — the Lustre server-side monitor: per-second device
//!   counters reduced to windowed sum/mean/std (paper §III-B, Table II).
//!   `server_windows` is a batch adapter over the pipeline.
//! - [`features`] — assembly of the per-server vectors fed to the
//!   kernel-based network (paper §III-C).
//! - [`sampler`] — the budget-bounded adaptive downsampler that thins
//!   quiet per-device series (and restores full rate on activity or an
//!   anomaly alert) before they reach the pipeline.
//! - [`window`] — shared window indexing.

pub mod client;
pub mod dxt;
pub mod features;
pub mod pipeline;
pub mod sampler;
pub mod schema;
pub mod server;
pub mod window;

pub use client::{client_windows, ClientWindow, DevTargeting};
pub use dxt::{export_dxt, import_dxt, DxtParseError};
pub use features::{feature_names, server_vector, FeatureConfig, Imputation, N_FEATURES};
pub use pipeline::{EmittedWindow, FeaturePipeline, OutOfOrder};
pub use sampler::{AdaptiveSampler, SamplerConfig, SamplerStats};
pub use schema::{FeatureSchema, SCHEMA_VERSION};
pub use server::{server_windows, SeriesStats, ServerWindow, N_SERVER_SERIES, SERVER_SERIES};
pub use window::WindowConfig;
