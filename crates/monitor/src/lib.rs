//! # qi-monitor
//!
//! The paper's two runtime monitors, reimplemented over simulator traces:
//!
//! - [`client`] — the modified-Darshan client-side monitor: per-app,
//!   per-window request counts, byte totals, I/O time, throughput/IOPS,
//!   and per-server targeting (paper §III-A).
//! - [`server`] — the Lustre server-side monitor: per-second device
//!   counters reduced to windowed sum/mean/std (paper §III-B, Table II).
//! - [`features`] — assembly of the per-server vectors fed to the
//!   kernel-based network (paper §III-C).
//! - [`window`] — shared window indexing.

pub mod client;
pub mod dxt;
pub mod features;
pub mod server;
pub mod stream;
pub mod window;

pub use client::{client_windows, ClientWindow, DevTargeting};
pub use dxt::{export_dxt, import_dxt, DxtParseError};
pub use features::{feature_names, server_vector, FeatureConfig, N_FEATURES};
pub use server::{server_windows, SeriesStats, ServerWindow, N_SERVER_SERIES, SERVER_SERIES};
pub use stream::{EmittedWindow, StreamingMonitor};
pub use window::WindowConfig;
