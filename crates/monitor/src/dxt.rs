//! Darshan DXT-style trace export and import.
//!
//! The paper's Figure 1 data comes from Darshan DXT logs ("The exact
//! time of each I/O request is collected from Darshan DXT logs",
//! §II-B). This module renders a run's operation trace in a DXT-like
//! text format — one line per operation with rank, operation class,
//! sequence number, offset/length, and start/end timestamps — and parses
//! it back, so traces can be stored, diffed, and re-analysed offline the
//! way the paper's labelling pipeline does.

use std::fmt::Write as _;

use qi_pfs::ids::{AppId, OpToken};
use qi_pfs::ops::{OpKind, OpRecord, RunTrace};
use qi_simkit::time::SimTime;

/// Render the target application's operations as a DXT-like log.
pub fn export_dxt(trace: &RunTrace, app: AppId) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# darshan-dxt-like trace, app {}", app.0);
    let _ = writeln!(
        out,
        "# Module  Rank  Op  Seq  Offset  Length  Start(s)  End(s)"
    );
    for op in trace.ops_of(app) {
        let _ = writeln!(
            out,
            "X_POSIX\t{}\t{}\t{}\t{}\t{}\t{:.9}\t{:.9}",
            op.token.rank,
            op.kind.label(),
            op.token.seq,
            0, // offsets are not retained in OpRecord; kept for format shape
            op.bytes,
            op.issued.as_secs_f64(),
            op.completed.as_secs_f64(),
        );
    }
    out
}

/// A parse failure with its line number.
#[derive(Debug, PartialEq, Eq)]
pub struct DxtParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DxtParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DXT parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DxtParseError {}

fn parse_kind(s: &str) -> Option<OpKind> {
    match s {
        "read" => Some(OpKind::Read),
        "write" => Some(OpKind::Write),
        "open" => Some(OpKind::Open),
        "create" => Some(OpKind::Create),
        "stat" => Some(OpKind::Stat),
        "close" => Some(OpKind::Close),
        "unlink" => Some(OpKind::Unlink),
        "mkdir" => Some(OpKind::Mkdir),
        _ => None,
    }
}

/// Parse a DXT-like log produced by [`export_dxt`] back into operation
/// records attributed to `app`.
pub fn import_dxt(text: &str, app: AppId) -> Result<Vec<OpRecord>, DxtParseError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 8 {
            return Err(DxtParseError {
                line: lineno,
                message: format!("expected 8 fields, got {}", fields.len()),
            });
        }
        if fields[0] != "X_POSIX" {
            return Err(DxtParseError {
                line: lineno,
                message: format!("unknown module {:?}", fields[0]),
            });
        }
        let err = |m: &str| DxtParseError {
            line: lineno,
            message: m.to_string(),
        };
        let rank: u32 = fields[1].parse().map_err(|_| err("bad rank"))?;
        let kind = parse_kind(fields[2]).ok_or_else(|| err("bad op kind"))?;
        let seq: u64 = fields[3].parse().map_err(|_| err("bad seq"))?;
        let bytes: u64 = fields[5].parse().map_err(|_| err("bad length"))?;
        let start: f64 = fields[6].parse().map_err(|_| err("bad start"))?;
        let end: f64 = fields[7].parse().map_err(|_| err("bad end"))?;
        if end < start {
            return Err(err("end before start"));
        }
        out.push(OpRecord {
            token: OpToken { app, rank, seq },
            kind,
            bytes,
            issued: SimTime((start * 1e9).round() as u64),
            completed: SimTime((end * 1e9).round() as u64),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RunTrace {
        let mut t = RunTrace::default();
        for (i, kind) in [OpKind::Open, OpKind::Read, OpKind::Write, OpKind::Close]
            .into_iter()
            .enumerate()
        {
            t.ops.push(OpRecord {
                token: OpToken {
                    app: AppId(2),
                    rank: (i % 2) as u32,
                    seq: i as u64,
                },
                kind,
                bytes: (i as u64) * 1000,
                issued: SimTime::from_millis(i as u64 * 10),
                completed: SimTime::from_millis(i as u64 * 10 + 5),
            });
        }
        // A foreign app's op that must not be exported.
        t.ops.push(OpRecord {
            token: OpToken {
                app: AppId(9),
                rank: 0,
                seq: 0,
            },
            kind: OpKind::Stat,
            bytes: 0,
            issued: SimTime::ZERO,
            completed: SimTime::from_millis(1),
        });
        t
    }

    #[test]
    fn export_import_round_trips() {
        let trace = sample_trace();
        let text = export_dxt(&trace, AppId(2));
        let ops = import_dxt(&text, AppId(2)).expect("parse");
        assert_eq!(ops.len(), 4);
        for (orig, parsed) in trace.ops_of(AppId(2)).zip(&ops) {
            assert_eq!(orig.token, parsed.token);
            assert_eq!(orig.kind, parsed.kind);
            assert_eq!(orig.bytes, parsed.bytes);
            assert_eq!(orig.issued, parsed.issued);
            assert_eq!(orig.completed, parsed.completed);
        }
    }

    #[test]
    fn export_filters_other_apps() {
        let text = export_dxt(&sample_trace(), AppId(2));
        assert!(!text.contains("stat"), "foreign op leaked:\n{text}");
        assert_eq!(text.lines().filter(|l| l.starts_with("X_POSIX")).count(), 4);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n# more\nX_POSIX 0 read 0 0 100 1.0 1.5\n";
        let ops = import_dxt(text, AppId(0)).expect("parse");
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::Read);
        assert_eq!(ops[0].bytes, 100);
    }

    #[test]
    fn malformed_lines_report_position() {
        let text = "# ok\nX_POSIX 0 read 0 0\n";
        let err = import_dxt(text, AppId(0)).expect_err("short line");
        assert_eq!(err.line, 2);
        assert!(err.message.contains("8 fields"));

        let text = "X_POSIX 0 frobnicate 0 0 10 1.0 2.0\n";
        let err = import_dxt(text, AppId(0)).expect_err("bad kind");
        assert!(err.message.contains("op kind"));

        let text = "X_POSIX 0 read 0 0 10 2.0 1.0\n";
        let err = import_dxt(text, AppId(0)).expect_err("inverted times");
        assert!(err.message.contains("end before start"));
    }
}
