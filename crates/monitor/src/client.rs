//! Client-side monitor (the modified-Darshan role, paper §III-A).
//!
//! Consumes a run's operation and RPC trace and aggregates, per
//! application and time window:
//!
//! - **# of I/O requests** — individual and combined counts of read,
//!   write, and metadata operations;
//! - **I/O sizes** — individual and combined byte totals;
//! - **actual I/O time** — total time spent in I/O inside the window,
//!   plus derived throughput and IOPS;
//! - **per-server targeting** — request/byte counts split by the storage
//!   device each RPC went to (what the per-server model vectors need).

use std::collections::HashMap;

use qi_pfs::ids::{AppId, OpToken};
use qi_pfs::ops::{OpKind, OpRecord, RpcRecord, RunTrace};
use qi_simkit::time::SimDuration;

use crate::features::FeatureConfig;
use crate::pipeline::FeaturePipeline;
use crate::window::WindowConfig;

/// Client-side metrics for one `(application, window)` cell.
#[derive(Clone, Debug, Default)]
pub struct ClientWindow {
    /// Completed read operations.
    pub reads: u64,
    /// Completed write operations.
    pub writes: u64,
    /// Completed metadata operations.
    pub metas: u64,
    /// Bytes moved by reads.
    pub bytes_read: u64,
    /// Bytes moved by writes.
    pub bytes_written: u64,
    /// Total time spent in I/O (sum of op durations completing here).
    pub io_time: SimDuration,
    /// Per-device targeting counters, indexed by device id.
    pub per_dev: Vec<DevTargeting>,
    /// Ops that completed in this window, with their durations —
    /// retained for the labelling stage (matched against the baseline).
    pub ops: Vec<(OpToken, OpKind, SimDuration)>,
}

/// How much of an application's window load targeted one device.
#[derive(Clone, Copy, Debug, Default)]
pub struct DevTargeting {
    /// Read RPCs sent to this device.
    pub read_reqs: u64,
    /// Write RPCs sent to this device.
    pub write_reqs: u64,
    /// Metadata RPCs sent to this device.
    pub meta_reqs: u64,
    /// Read payload bytes.
    pub bytes_read: u64,
    /// Write payload bytes.
    pub bytes_written: u64,
}

impl ClientWindow {
    /// An empty cell with per-device targeting slots for `n_devices`.
    pub fn sized(n_devices: usize) -> Self {
        ClientWindow {
            per_dev: vec![DevTargeting::default(); n_devices],
            ..ClientWindow::default()
        }
    }

    /// Accumulate one completed operation into this cell. This (with
    /// [`ClientWindow::record_rpc`]) is the *single* definition of
    /// client-side accumulation — both the streaming pipeline and the
    /// batch adapters go through it.
    pub fn record_op(&mut self, op: &OpRecord) {
        match op.kind {
            OpKind::Read => {
                self.reads += 1;
                self.bytes_read += op.bytes;
            }
            OpKind::Write => {
                self.writes += 1;
                self.bytes_written += op.bytes;
            }
            _ => self.metas += 1,
        }
        self.io_time += op.duration();
        self.ops.push((op.token, op.kind, op.duration()));
    }

    /// Accumulate one issued RPC's per-server targeting into this cell.
    pub fn record_rpc(&mut self, rpc: &RpcRecord) {
        let d = &mut self.per_dev[rpc.dev.index()];
        match rpc.kind {
            OpKind::Read => {
                d.read_reqs += 1;
                d.bytes_read += rpc.bytes;
            }
            OpKind::Write => {
                d.write_reqs += 1;
                d.bytes_written += rpc.bytes;
            }
            _ => d.meta_reqs += 1,
        }
    }

    /// Combined operation count.
    pub fn total_ops(&self) -> u64 {
        self.reads + self.writes + self.metas
    }

    /// Combined bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Bytes per second of window time.
    pub fn throughput(&self, window: SimDuration) -> f64 {
        self.total_bytes() as f64 / window.as_secs_f64()
    }

    /// Operations per second of window time.
    pub fn iops(&self, window: SimDuration) -> f64 {
        self.total_ops() as f64 / window.as_secs_f64()
    }
}

/// Aggregate a run's client-side trace into per-(app, window) metrics.
///
/// Operations are attributed to the window in which they *complete*
/// (matching how the aggregator flushes its shared-memory buffer); RPC
/// targeting is attributed to the issue window.
///
/// This is a thin batch adapter over the streaming
/// [`FeaturePipeline`] — the accumulation itself is defined once, in
/// [`ClientWindow::record_op`]/[`ClientWindow::record_rpc`] driven by
/// the pipeline, so the batch result is byte-identical to streaming
/// the same events.
pub fn client_windows(
    trace: &RunTrace,
    cfg: WindowConfig,
    n_devices: u32,
) -> HashMap<(AppId, u64), ClientWindow> {
    // Only the client streams matter here; an empty sample stream keeps
    // the pipeline from doing server-side work.
    let pipeline = FeaturePipeline::new(cfg, FeatureConfig::default(), n_devices);
    let mut out = HashMap::new();
    for ew in pipeline.run_streams(&trace.ops, &trace.rpcs, &[]) {
        for (app, cell) in ew.clients {
            out.insert((app, ew.window), cell);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::DeviceId;
    use qi_pfs::ops::{OpRecord, RpcRecord};
    use qi_simkit::time::SimTime;

    fn tok(app: u32, seq: u64) -> OpToken {
        OpToken {
            app: AppId(app),
            rank: 0,
            seq,
        }
    }

    fn trace() -> RunTrace {
        let mut t = RunTrace::default();
        t.ops.push(OpRecord {
            token: tok(0, 0),
            kind: OpKind::Write,
            bytes: 1000,
            issued: SimTime::from_millis(100),
            completed: SimTime::from_millis(300),
        });
        t.ops.push(OpRecord {
            token: tok(0, 1),
            kind: OpKind::Read,
            bytes: 2000,
            issued: SimTime::from_millis(400),
            completed: SimTime::from_millis(1200), // next window
        });
        t.ops.push(OpRecord {
            token: tok(1, 0),
            kind: OpKind::Stat,
            bytes: 0,
            issued: SimTime::from_millis(50),
            completed: SimTime::from_millis(60),
        });
        t.rpcs.push(RpcRecord {
            app: AppId(0),
            dev: DeviceId(2),
            kind: OpKind::Write,
            bytes: 1000,
            issued: SimTime::from_millis(100),
        });
        t
    }

    #[test]
    fn ops_land_in_completion_window() {
        let w = client_windows(&trace(), WindowConfig::seconds(1), 4);
        let w0 = &w[&(AppId(0), 0)];
        assert_eq!(w0.writes, 1);
        assert_eq!(w0.reads, 0);
        assert_eq!(w0.bytes_written, 1000);
        let w1 = &w[&(AppId(0), 1)];
        assert_eq!(w1.reads, 1);
        assert_eq!(w1.bytes_read, 2000);
    }

    #[test]
    fn apps_are_separated() {
        let w = client_windows(&trace(), WindowConfig::seconds(1), 4);
        let m = &w[&(AppId(1), 0)];
        assert_eq!(m.metas, 1);
        assert_eq!(m.total_ops(), 1);
        assert_eq!(m.total_bytes(), 0);
    }

    #[test]
    fn io_time_sums_durations() {
        let w = client_windows(&trace(), WindowConfig::seconds(1), 4);
        let w0 = &w[&(AppId(0), 0)];
        assert_eq!(w0.io_time, SimDuration::from_millis(200));
        assert_eq!(w0.ops.len(), 1);
    }

    #[test]
    fn per_device_targeting() {
        let w = client_windows(&trace(), WindowConfig::seconds(1), 4);
        let w0 = &w[&(AppId(0), 0)];
        assert_eq!(w0.per_dev[2].write_reqs, 1);
        assert_eq!(w0.per_dev[2].bytes_written, 1000);
        assert_eq!(w0.per_dev[0].write_reqs, 0);
    }

    #[test]
    fn derived_rates() {
        let cw = ClientWindow {
            reads: 2,
            bytes_read: 4_000_000,
            ..ClientWindow::default()
        };
        let win = SimDuration::from_secs(2);
        assert!((cw.throughput(win) - 2_000_000.0).abs() < 1e-9);
        assert!((cw.iops(win) - 1.0).abs() < 1e-9);
    }
}
