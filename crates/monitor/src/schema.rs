//! Versioned description of the feature layout a model was trained on.
//!
//! The paper's predictor only works because the exact same per-server
//! feature vectors (§III-A/§III-C, Table II) are computed at training
//! time and at prediction time. A [`FeatureSchema`] pins everything
//! that determines a vector's meaning — window length, enabled feature
//! blocks, per-block lengths, server series names, imputation policy —
//! under an explicit schema version plus an FNV-1a digest of the
//! canonical description. The schema is produced by the feature
//! pipeline, threaded through dataset generation and training, embedded
//! in the QIMODEL file format, and validated whenever a model is bound
//! to a pipeline (`qi-serve::ModelRegistry`, `qi-core::Predictor`):
//! a mismatch is a typed `QiError::SchemaMismatch`, never a silent
//! wrong-shape inference.

use std::fmt;

use crate::features::{FeatureConfig, Imputation, N_CLIENT_GLOBAL, N_CLIENT_TARGET};
use crate::server::SERVER_SERIES;
use crate::window::WindowConfig;
use qi_simkit::time::SimDuration;

/// Current schema layout version. Bump when the *meaning* of the
/// canonical description changes (new fields, reordered blocks).
pub const SCHEMA_VERSION: u32 = 1;

/// A complete, versioned description of one feature layout.
///
/// Construct with [`FeatureSchema::current`] (a pipeline-bound schema)
/// or [`FeatureSchema::custom`] (a free-form layout for synthetic
/// datasets, benches, and tests — not bound to any monitor window).
/// Equality is structural: two schemas compare equal exactly when a
/// model trained under one can serve vectors produced under the other.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FeatureSchema {
    version: u32,
    /// Monitor window length in nanoseconds; `0` means the schema is
    /// not bound to a window (synthetic/custom layouts).
    window_nanos: u64,
    features: FeatureConfig,
    client_len: usize,
    series: Vec<String>,
    imputation: Imputation,
    digest: u64,
}

impl FeatureSchema {
    /// The schema the feature pipeline produces under `wcfg`/`fcfg`
    /// with the given imputation policy.
    pub fn current(wcfg: WindowConfig, fcfg: FeatureConfig, imputation: Imputation) -> Self {
        Self::assemble(
            wcfg.window.as_nanos(),
            fcfg,
            N_CLIENT_GLOBAL + N_CLIENT_TARGET,
            SERVER_SERIES.iter().map(|s| s.to_string()).collect(),
            imputation,
        )
    }

    /// A free-form layout of `n_features` floats per server vector,
    /// not bound to any monitor window. Used for synthetic datasets,
    /// benches, and tests; a registry expecting a pipeline-bound
    /// schema will reject models carrying one of these.
    pub fn custom(n_features: usize) -> Self {
        Self::assemble(
            0,
            FeatureConfig {
                client: true,
                server: false,
            },
            n_features,
            Vec::new(),
            Imputation::Zero,
        )
    }

    /// Reassemble a schema from its serialized parts (QIMODEL parsing).
    /// The digest is recomputed from the parts; callers holding a
    /// stored digest compare it against [`FeatureSchema::digest`].
    pub fn from_parts(
        version: u32,
        window_nanos: u64,
        features: FeatureConfig,
        client_len: usize,
        series: Vec<String>,
        imputation: Imputation,
    ) -> Self {
        let mut s = FeatureSchema {
            version,
            window_nanos,
            features,
            client_len,
            series,
            imputation,
            digest: 0,
        };
        s.digest = fnv1a(s.canonical().as_bytes());
        s
    }

    fn assemble(
        window_nanos: u64,
        features: FeatureConfig,
        client_len: usize,
        series: Vec<String>,
        imputation: Imputation,
    ) -> Self {
        Self::from_parts(
            SCHEMA_VERSION,
            window_nanos,
            features,
            client_len,
            series,
            imputation,
        )
    }

    /// The canonical single-line description the digest covers.
    fn canonical(&self) -> String {
        format!(
            "qi-feature-schema v{} window_ns={} client={} server={} client_len={} \
             series={} imputation={}",
            self.version,
            self.window_nanos,
            u8::from(self.features.client),
            u8::from(self.features.server),
            self.client_len,
            if self.series.is_empty() {
                "-".to_string()
            } else {
                self.series.join(",")
            },
            self.imputation.token(),
        )
    }

    /// Schema layout version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Monitor window length in nanoseconds (`0` when unbound).
    pub fn window_nanos(&self) -> u64 {
        self.window_nanos
    }

    /// The monitor window this schema was produced under, or `None`
    /// for custom/synthetic layouts.
    pub fn window_config(&self) -> Option<WindowConfig> {
        (self.window_nanos > 0).then(|| WindowConfig {
            window: SimDuration::from_nanos(self.window_nanos),
        })
    }

    /// Which feature blocks are enabled.
    pub fn feature_config(&self) -> FeatureConfig {
        self.features
    }

    /// Length of the client block (global + targeting features).
    pub fn client_len(&self) -> usize {
        self.client_len
    }

    /// Server series names, in vector order (empty when unbound).
    pub fn series(&self) -> &[String] {
        &self.series
    }

    /// Imputation policy vectors are assembled under.
    pub fn imputation(&self) -> Imputation {
        self.imputation
    }

    /// FNV-1a 64 digest of the canonical description.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Floats per server vector under this schema.
    pub fn vector_len(&self) -> usize {
        let client = if self.features.client {
            self.client_len
        } else {
            0
        };
        let server = if self.features.server {
            self.series.len() * 3
        } else {
            0
        };
        client + server
    }
}

impl fmt::Display for FeatureSchema {
    /// Compact summary used in `SchemaMismatch` messages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{} ", self.version)?;
        match self.window_config() {
            Some(w) => write!(f, "window={}ms", w.window.as_millis_f64())?,
            None => write!(f, "window=unbound")?,
        }
        let blocks = match (self.features.client, self.features.server) {
            (true, true) => "client+server",
            (true, false) => "client",
            (false, true) => "server",
            (false, false) => "none",
        };
        write!(
            f,
            " blocks={blocks} features={} imputation={} digest={:016x}",
            self.vector_len(),
            self.imputation.token(),
            self.digest,
        )
    }
}

/// FNV-1a 64-bit hash (same construction as the QIMODEL checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::N_FEATURES;

    fn wcfg() -> WindowConfig {
        WindowConfig {
            window: SimDuration::from_secs(1),
        }
    }

    #[test]
    fn current_schema_matches_pipeline_layout() {
        let s = FeatureSchema::current(wcfg(), FeatureConfig::default(), Imputation::Zero);
        assert_eq!(s.version(), SCHEMA_VERSION);
        assert_eq!(s.vector_len(), N_FEATURES);
        assert_eq!(s.window_config(), Some(wcfg()));
        assert_eq!(s.series().len(), crate::server::N_SERVER_SERIES);
    }

    #[test]
    fn custom_schema_is_unbound() {
        let s = FeatureSchema::custom(6);
        assert_eq!(s.vector_len(), 6);
        assert_eq!(s.window_config(), None);
        assert!(s.to_string().contains("window=unbound"));
    }

    #[test]
    fn every_knob_changes_identity() {
        let base = FeatureSchema::current(wcfg(), FeatureConfig::default(), Imputation::Zero);
        let other_window = FeatureSchema::current(
            WindowConfig {
                window: SimDuration::from_secs(2),
            },
            FeatureConfig::default(),
            Imputation::Zero,
        );
        let ablated = FeatureSchema::current(
            wcfg(),
            FeatureConfig {
                client: true,
                server: false,
            },
            Imputation::Zero,
        );
        let other_imp =
            FeatureSchema::current(wcfg(), FeatureConfig::default(), Imputation::DeviceMean);
        for other in [&other_window, &ablated, &other_imp] {
            assert_ne!(&base, other);
            assert_ne!(base.digest(), other.digest());
        }
        // Identical construction is identical identity.
        let again = FeatureSchema::current(wcfg(), FeatureConfig::default(), Imputation::Zero);
        assert_eq!(base, again);
        assert_eq!(base.digest(), again.digest());
    }

    #[test]
    fn from_parts_round_trips_digest() {
        let s = FeatureSchema::current(wcfg(), FeatureConfig::default(), Imputation::DeviceMean);
        let rebuilt = FeatureSchema::from_parts(
            s.version(),
            s.window_nanos(),
            s.feature_config(),
            s.client_len(),
            s.series().to_vec(),
            s.imputation(),
        );
        assert_eq!(s, rebuilt);
        assert_eq!(s.digest(), rebuilt.digest());
    }

    #[test]
    fn ablated_vector_len_tracks_blocks() {
        let client_only = FeatureSchema::current(
            wcfg(),
            FeatureConfig {
                client: true,
                server: false,
            },
            Imputation::Zero,
        );
        let server_only = FeatureSchema::current(
            wcfg(),
            FeatureConfig {
                client: false,
                server: true,
            },
            Imputation::Zero,
        );
        assert_eq!(
            client_only.vector_len() + server_only.vector_len(),
            N_FEATURES
        );
    }
}
