//! Online (streaming) window aggregation.
//!
//! The batch functions in [`crate::client`] and [`crate::server`] digest
//! a finished run. At deployment time the paper's framework instead
//! receives metrics continuously — the MPI aggregator flushes its
//! shared-memory buffer each window, and the training server consumes
//! window after window (§III-A/C). [`StreamingMonitor`] reproduces that:
//! feed it events in time order and it emits each `(app, window)` cell
//! exactly once, as soon as the window can no longer change.

use std::collections::HashMap;

use qi_pfs::ids::{AppId, DeviceId};
use qi_pfs::ops::{OpRecord, RpcRecord, ServerSample};

use crate::client::{ClientWindow, DevTargeting};
use crate::features::{server_vector_masked, FeatureAvailability, FeatureConfig};
use crate::server::{ServerWindow, N_SERVER_SERIES};
use crate::window::WindowConfig;
use qi_simkit::error::QiError;
use qi_simkit::stats::OnlineStats;
use qi_simkit::time::SimTime;
use qi_telemetry::{MetricValue, MetricsSnapshot};

/// An event arrived behind the monitor's watermark. Surfaced as the
/// `source()` of the [`QiError::Monitor`] the push methods return.
#[derive(Debug)]
pub struct OutOfOrder {
    /// The offending event time.
    pub t: SimTime,
    /// The watermark it fell behind.
    pub watermark: SimTime,
}

impl std::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event at {:?} arrived out of order behind watermark {:?}",
            self.t, self.watermark
        )
    }
}

impl std::error::Error for OutOfOrder {}

/// A fully assembled window emitted by the streaming monitor.
#[derive(Debug)]
pub struct EmittedWindow {
    /// Window index.
    pub window: u64,
    /// Per-application client metrics (apps active in this window).
    pub clients: HashMap<AppId, ClientWindow>,
    /// Per-device server metrics.
    pub servers: HashMap<DeviceId, ServerWindow>,
}

impl EmittedWindow {
    /// Assemble, for every application active in this window, the
    /// flattened per-server feature block the predictor consumes
    /// (`n_devices × cfg.len()`, row-major) together with its
    /// availability mask — the online equivalent of
    /// `dataset::window_vectors` for a single emitted window. The
    /// serving layer turns each returned `(app, block)` pair into one
    /// prediction request, so apps come back sorted by id to keep the
    /// request order deterministic.
    pub fn feature_blocks(
        &self,
        cfg: FeatureConfig,
        n_devices: u32,
        window: qi_simkit::time::SimDuration,
    ) -> Vec<(AppId, Vec<f32>, FeatureAvailability)> {
        let mut apps: Vec<AppId> = self.clients.keys().copied().collect();
        apps.sort_unstable_by_key(|a| a.0);
        apps.into_iter()
            .map(|app| {
                let client = self.clients.get(&app);
                let mut block = Vec::with_capacity(n_devices as usize * cfg.len());
                let mut avail = FeatureAvailability {
                    client: client.is_some(),
                    server: true,
                };
                for d in 0..n_devices {
                    let dev = DeviceId(d);
                    let (v, a) =
                        server_vector_masked(cfg, client, self.servers.get(&dev), dev, window);
                    avail.server &= a.server;
                    block.extend(v);
                }
                (app, block, avail)
            })
            .collect()
    }
}

/// Incremental window builder. All inputs must arrive in non-decreasing
/// time order (as they do from the simulator and from real collectors).
pub struct StreamingMonitor {
    cfg: WindowConfig,
    n_devices: u32,
    watermark: SimTime,
    current: u64,
    clients: HashMap<AppId, ClientWindow>,
    server_acc: HashMap<DeviceId, [OnlineStats; N_SERVER_SERIES]>,
    last_sample: HashMap<DeviceId, ServerSample>,
    emitted: u64,
    /// Windows flushed with no client or server content (time gaps in
    /// the stream); a real aggregator would drop these on the floor.
    dropped: u64,
    ops_ingested: u64,
    rpcs_ingested: u64,
    samples_ingested: u64,
}

impl StreamingMonitor {
    /// New monitor starting at window 0.
    pub fn new(cfg: WindowConfig, n_devices: u32) -> Self {
        StreamingMonitor {
            cfg,
            n_devices,
            watermark: SimTime::ZERO,
            current: 0,
            clients: HashMap::new(),
            server_acc: HashMap::new(),
            last_sample: HashMap::new(),
            emitted: 0,
            dropped: 0,
            ops_ingested: 0,
            rpcs_ingested: 0,
            samples_ingested: 0,
        }
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Windows emitted empty (no client or server content) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Telemetry snapshot of the monitor's ingest/emit counters
    /// (`monitor.*` namespace). Take it before calling
    /// [`StreamingMonitor::finish`], which consumes the monitor.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put("monitor.ops_ingested", MetricValue::Counter(self.ops_ingested));
        snap.put(
            "monitor.rpcs_ingested",
            MetricValue::Counter(self.rpcs_ingested),
        );
        snap.put(
            "monitor.samples_ingested",
            MetricValue::Counter(self.samples_ingested),
        );
        snap.put("monitor.windows_emitted", MetricValue::Counter(self.emitted));
        snap.put("monitor.windows_dropped", MetricValue::Counter(self.dropped));
        snap
    }

    fn check_order(&mut self, t: SimTime) -> Result<(), QiError> {
        if t < self.watermark {
            return Err(QiError::monitor(
                "ingesting a window event",
                OutOfOrder {
                    t,
                    watermark: self.watermark,
                },
            ));
        }
        self.watermark = t;
        Ok(())
    }

    /// Advance to `t`'s window, emitting every completed window before it.
    fn roll_to(&mut self, t: SimTime, out: &mut Vec<EmittedWindow>) {
        let w = self.cfg.index_of(t);
        while self.current < w {
            out.push(self.flush_current());
        }
    }

    fn flush_current(&mut self) -> EmittedWindow {
        if self.clients.is_empty() && self.server_acc.is_empty() {
            self.dropped += 1;
        }
        let clients = std::mem::take(&mut self.clients);
        let servers = self
            .server_acc
            .drain()
            .map(|(dev, stats)| {
                let mut sw = ServerWindow {
                    samples: stats[0].count() as u32,
                    ..ServerWindow::default()
                };
                for (i, s) in stats.iter().enumerate() {
                    sw.series[i] = crate::server::SeriesStats {
                        sum: s.sum(),
                        mean: s.mean(),
                        std: s.std_dev(),
                    };
                }
                (dev, sw)
            })
            .collect();
        let window = self.current;
        self.current += 1;
        self.emitted += 1;
        EmittedWindow {
            window,
            clients,
            servers,
        }
    }

    /// Feed one completed client operation. Returns any windows that
    /// became final; fails if the event is behind the watermark.
    pub fn push_op(&mut self, op: &OpRecord) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(op.completed)?;
        self.ops_ingested += 1;
        let mut out = Vec::new();
        self.roll_to(op.completed, &mut out);
        let n = self.n_devices as usize;
        let cell = self
            .clients
            .entry(op.token.app)
            .or_insert_with(|| ClientWindow {
                per_dev: vec![DevTargeting::default(); n],
                ..ClientWindow::default()
            });
        match op.kind {
            qi_pfs::ops::OpKind::Read => {
                cell.reads += 1;
                cell.bytes_read += op.bytes;
            }
            qi_pfs::ops::OpKind::Write => {
                cell.writes += 1;
                cell.bytes_written += op.bytes;
            }
            _ => cell.metas += 1,
        }
        cell.io_time += op.duration();
        cell.ops.push((op.token, op.kind, op.duration()));
        Ok(out)
    }

    /// Feed one issued RPC (attributes per-server targeting).
    pub fn push_rpc(&mut self, rpc: &RpcRecord) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(rpc.issued)?;
        self.rpcs_ingested += 1;
        let mut out = Vec::new();
        self.roll_to(rpc.issued, &mut out);
        let n = self.n_devices as usize;
        let cell = self.clients.entry(rpc.app).or_insert_with(|| ClientWindow {
            per_dev: vec![DevTargeting::default(); n],
            ..ClientWindow::default()
        });
        let d = &mut cell.per_dev[rpc.dev.index()];
        match rpc.kind {
            qi_pfs::ops::OpKind::Read => {
                d.read_reqs += 1;
                d.bytes_read += rpc.bytes;
            }
            qi_pfs::ops::OpKind::Write => {
                d.write_reqs += 1;
                d.bytes_written += rpc.bytes;
            }
            _ => d.meta_reqs += 1,
        }
        Ok(out)
    }

    /// Feed one per-second server sample.
    pub fn push_sample(&mut self, sample: &ServerSample) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(sample.time)?;
        self.samples_ingested += 1;
        let mut out = Vec::new();
        // The interval (prev, cur] belongs to the window holding its end.
        if sample.time.as_nanos() > 0 {
            self.roll_to(SimTime(sample.time.as_nanos() - 1), &mut out);
        }
        if let Some(prev) = self.last_sample.get(&sample.dev) {
            let deltas = crate::server::delta_series_pub(prev, sample);
            let acc = self.server_acc.entry(sample.dev).or_default();
            for (stat, d) in acc.iter_mut().zip(deltas) {
                stat.push(d);
            }
        }
        self.last_sample.insert(sample.dev, *sample);
        Ok(out)
    }

    /// Signal end-of-stream: flush the final (partial) window.
    pub fn finish(mut self) -> Vec<EmittedWindow> {
        let mut out = Vec::new();
        if !self.clients.is_empty() || !self.server_acc.is_empty() {
            out.push(self.flush_current());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::OpToken;
    use qi_pfs::ops::{OpKind, RunTrace};
    use qi_simkit::time::SimDuration;

    fn op(app: u32, seq: u64, completed_ms: u64) -> OpRecord {
        OpRecord {
            token: OpToken {
                app: AppId(app),
                rank: 0,
                seq,
            },
            kind: OpKind::Read,
            bytes: 100,
            issued: SimTime::from_millis(completed_ms.saturating_sub(5)),
            completed: SimTime::from_millis(completed_ms),
        }
    }

    #[test]
    fn windows_emit_when_complete() {
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        assert!(m.push_op(&op(0, 0, 100)).expect("in order").is_empty());
        assert!(m.push_op(&op(0, 1, 900)).expect("in order").is_empty());
        // Crossing into window 2 finalises windows 0 and 1.
        let emitted = m.push_op(&op(0, 2, 2100)).expect("in order");
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].window, 0);
        assert_eq!(emitted[0].clients[&AppId(0)].reads, 2);
        assert_eq!(emitted[1].window, 1);
        assert!(emitted[1].clients.is_empty());
        let rest = m.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window, 2);
        assert_eq!(rest[0].clients[&AppId(0)].reads, 1);
    }

    #[test]
    fn telemetry_counts_ingest_emits_and_drops() {
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 100)).expect("in order");
        // Jumping to second 5 flushes windows 0..=4; 1..=4 are empty.
        let emitted = m.push_op(&op(0, 1, 5_100)).expect("in order");
        assert_eq!(emitted.len(), 5);
        let snap = m.metrics_snapshot();
        assert_eq!(snap.counter("monitor.ops_ingested"), Some(2));
        assert_eq!(snap.counter("monitor.rpcs_ingested"), Some(0));
        assert_eq!(snap.counter("monitor.samples_ingested"), Some(0));
        assert_eq!(snap.counter("monitor.windows_emitted"), Some(5));
        assert_eq!(snap.counter("monitor.windows_dropped"), Some(4));
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.dropped(), 4);
    }

    #[test]
    fn out_of_order_input_is_an_error() {
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 500)).expect("in order");
        let err = m.push_op(&op(0, 1, 400)).expect_err("behind watermark");
        assert!(err.to_string().contains("out of order"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn streaming_matches_batch_aggregation() {
        // Build an interleaved synthetic trace and check the streaming
        // result equals the batch client_windows() result.
        let mut trace = RunTrace::default();
        for i in 0..200u64 {
            trace.ops.push(op((i % 3) as u32, i, i * 37));
        }
        let cfg = WindowConfig::seconds(1);
        let batch = crate::client::client_windows(&trace, cfg, 4);

        let mut m = StreamingMonitor::new(cfg, 4);
        let mut emitted = Vec::new();
        for o in &trace.ops {
            emitted.extend(m.push_op(o).expect("in order"));
        }
        emitted.extend(m.finish());

        let mut streamed = 0;
        for ew in &emitted {
            for (app, cw) in &ew.clients {
                let b = &batch[&(*app, ew.window)];
                assert_eq!(b.reads, cw.reads);
                assert_eq!(b.bytes_read, cw.bytes_read);
                assert_eq!(b.io_time, cw.io_time);
                streamed += 1;
            }
        }
        assert_eq!(streamed, batch.len());
    }

    #[test]
    fn event_exactly_at_the_watermark_is_accepted() {
        // The watermark is the latest time seen; an event AT that time
        // is in order (ties are legal), only strictly-behind is not.
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 500)).expect("in order");
        m.push_op(&op(1, 0, 500)).expect("tie at watermark accepted");
        m.push_op(&op(0, 1, 500)).expect("repeated tie accepted");
        let rest = m.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].clients[&AppId(0)].reads, 2);
        assert_eq!(rest[0].clients[&AppId(1)].reads, 1);
    }

    #[test]
    fn out_of_order_error_carries_the_exact_times() {
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 750)).expect("in order");
        let err = m.push_op(&op(0, 1, 749)).expect_err("behind watermark");
        let src = std::error::Error::source(&err).expect("wraps OutOfOrder");
        let ooo = src.downcast_ref::<OutOfOrder>().expect("OutOfOrder cause");
        assert_eq!(ooo.t, SimTime::from_millis(749));
        assert_eq!(ooo.watermark, SimTime::from_millis(750));
        // The rejected event must not have been ingested.
        assert_eq!(m.metrics_snapshot().counter("monitor.ops_ingested"), Some(1));
    }

    #[test]
    fn far_ahead_event_flushes_each_cell_exactly_once() {
        // Jump 10 windows ahead; every (app, window) cell must come out
        // exactly once across the whole stream, including the final
        // partial window from finish().
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 100)).expect("in order");
        m.push_op(&op(1, 0, 200)).expect("in order");
        let mut emitted = m.push_op(&op(0, 1, 10_500)).expect("far ahead");
        assert_eq!(emitted.len(), 10, "windows 0..=9 finalised");
        emitted.extend(m.finish());
        let mut cells = std::collections::HashSet::new();
        for ew in &emitted {
            for app in ew.clients.keys() {
                assert!(
                    cells.insert((*app, ew.window)),
                    "cell ({app:?}, {}) emitted twice",
                    ew.window
                );
            }
        }
        assert_eq!(cells.len(), 3, "(0,0), (1,0) and (0,10)");
        assert!(cells.contains(&(AppId(0), 0)));
        assert!(cells.contains(&(AppId(1), 0)));
        assert!(cells.contains(&(AppId(0), 10)));
        // Window indices themselves are each emitted exactly once too.
        let mut windows: Vec<u64> = emitted.iter().map(|e| e.window).collect();
        windows.dedup();
        assert_eq!(windows.len(), emitted.len());
    }

    #[test]
    fn feature_blocks_cover_active_apps_in_id_order() {
        use crate::features::FeatureConfig;
        let mut m = StreamingMonitor::new(WindowConfig::seconds(1), 2);
        m.push_op(&op(3, 0, 100)).expect("in order");
        m.push_op(&op(1, 0, 200)).expect("in order");
        let emitted = m.finish();
        assert_eq!(emitted.len(), 1);
        let cfg = FeatureConfig::default();
        let blocks = emitted[0].feature_blocks(cfg, 2, SimDuration::from_secs(1));
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, AppId(1), "sorted by app id");
        assert_eq!(blocks[1].0, AppId(3));
        for (_, block, avail) in &blocks {
            assert_eq!(block.len(), 2 * cfg.len());
            assert!(avail.client, "client window present");
            assert!(!avail.server, "no samples pushed: server block absent");
        }
        // cl_reads of app 1's block is the op count.
        assert_eq!(blocks[0].1[0], 1.0);
    }

    #[test]
    fn server_samples_stream_into_window_stats() {
        use qi_pfs::queue::DeviceCounters;
        let mk = |sec: u64, reads: u64| ServerSample {
            time: SimTime::from_secs(sec),
            dev: DeviceId(0),
            counters: DeviceCounters {
                reads_completed: reads,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        };
        let mut m = StreamingMonitor::new(WindowConfig::seconds(2), 1);
        let mut emitted = Vec::new();
        emitted.extend(m.push_sample(&mk(1, 10)).expect("in order"));
        emitted.extend(m.push_sample(&mk(2, 30)).expect("in order"));
        emitted.extend(m.push_sample(&mk(3, 60)).expect("in order")); // finalises window 0
        emitted.extend(m.push_sample(&mk(5, 100)).expect("in order")); // finalises window 1
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].window, 0);
        let w0 = &emitted[0].servers[&DeviceId(0)];
        assert_eq!(w0.series[0].sum, 20.0); // delta 10→30
        assert_eq!(emitted[1].window, 1);
        let w1 = &emitted[1].servers[&DeviceId(0)];
        assert_eq!(w1.series[0].sum, 30.0); // delta 30→60
    }
}
