//! The one featurization path (windowing → accumulation → vectors).
//!
//! At deployment time the paper's framework receives metrics
//! continuously — the MPI aggregator flushes its shared-memory buffer
//! each window, and the training server consumes window after window
//! (§III-A/C). [`FeaturePipeline`] implements that incremental engine
//! once, and it is the *only* aggregation implementation in the
//! workspace: the batch entry points ([`crate::client::client_windows`],
//! [`crate::server::server_windows`], and the dataset layer's
//! window-vector assembly) are thin adapters that drive this same
//! engine over a finished [`RunTrace`]. Training and serving therefore
//! cannot drift apart — there is exactly one place where a feature is
//! defined, and the pipeline describes its own layout as a versioned
//! [`FeatureSchema`].
//!
//! Event-time merge order matters at window boundaries: a server sample
//! at time `t` describes the interval `(t-1s, t]`, which belongs to the
//! window *ending* at `t`, while an op or RPC at `t` belongs to the
//! window *starting* at `t`. The canonical merge therefore processes
//! ties as samples → RPCs → ops, so a boundary-time sample's delta is
//! accumulated before the op rolls the window forward.

use std::collections::HashMap;

use qi_pfs::ids::{AppId, DeviceId};
use qi_pfs::ops::{OpRecord, RpcRecord, RunTrace, ServerSample};

use crate::client::ClientWindow;
use crate::features::{
    server_vector_masked, FeatureAvailability, FeatureConfig, Imputation, N_SERVER,
};
use crate::schema::FeatureSchema;
use crate::server::{ServerWindow, N_SERVER_SERIES};
use crate::window::WindowConfig;
use qi_simkit::error::QiError;
use qi_simkit::stats::OnlineStats;
use qi_simkit::time::SimTime;
use qi_telemetry::{MetricValue, MetricsSnapshot};

/// An event arrived behind the pipeline's watermark. Surfaced as the
/// `source()` of the [`QiError::Monitor`] the push methods return.
#[derive(Debug)]
pub struct OutOfOrder {
    /// The offending event time.
    pub t: SimTime,
    /// The watermark it fell behind.
    pub watermark: SimTime,
}

impl std::fmt::Display for OutOfOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event at {:?} arrived out of order behind watermark {:?}",
            self.t, self.watermark
        )
    }
}

impl std::error::Error for OutOfOrder {}

/// A fully assembled window emitted by the pipeline.
#[derive(Debug)]
pub struct EmittedWindow {
    /// Window index.
    pub window: u64,
    /// Per-application client metrics (apps active in this window).
    pub clients: HashMap<AppId, ClientWindow>,
    /// Per-device server metrics.
    pub servers: HashMap<DeviceId, ServerWindow>,
}

impl EmittedWindow {
    /// Assemble, for every application active in this window, the
    /// flattened per-server feature block the predictor consumes
    /// (`n_devices × cfg.len()`, row-major) together with its
    /// availability mask — the online equivalent of the dataset
    /// layer's window vectors for a single emitted window. The
    /// serving layer turns each returned `(app, block)` pair into one
    /// prediction request, so apps come back sorted by id to keep the
    /// request order deterministic.
    pub fn feature_blocks(
        &self,
        cfg: FeatureConfig,
        n_devices: u32,
        window: qi_simkit::time::SimDuration,
    ) -> Vec<(AppId, Vec<f32>, FeatureAvailability)> {
        let mut apps: Vec<AppId> = self.clients.keys().copied().collect();
        apps.sort_unstable_by_key(|a| a.0);
        apps.into_iter()
            .map(|app| {
                let client = self.clients.get(&app);
                let mut block = Vec::with_capacity(n_devices as usize * cfg.len());
                let mut avail = FeatureAvailability {
                    client: client.is_some(),
                    server: true,
                };
                for d in 0..n_devices {
                    let dev = DeviceId(d);
                    let (v, a) =
                        server_vector_masked(cfg, client, self.servers.get(&dev), dev, window);
                    avail.server &= a.server;
                    block.extend(v);
                }
                (app, block, avail)
            })
            .collect()
    }
}

/// The incremental window builder — the canonical feature pipeline.
/// All pushed inputs must arrive in non-decreasing time order (as they
/// do from the simulator and from real collectors); the batch helpers
/// ([`FeaturePipeline::run_windows`]/[`FeaturePipeline::run_vectors`])
/// stable-sort a finished trace into that order first.
pub struct FeaturePipeline {
    cfg: WindowConfig,
    fcfg: FeatureConfig,
    imputation: Imputation,
    n_devices: u32,
    watermark: SimTime,
    current: u64,
    clients: HashMap<AppId, ClientWindow>,
    server_acc: HashMap<DeviceId, [OnlineStats; N_SERVER_SERIES]>,
    last_sample: HashMap<DeviceId, ServerSample>,
    emitted: u64,
    /// Windows flushed with no client or server content (time gaps in
    /// the stream); a real aggregator would drop these on the floor.
    dropped: u64,
    ops_ingested: u64,
    rpcs_ingested: u64,
    samples_ingested: u64,
}

impl FeaturePipeline {
    /// New pipeline starting at window 0, with [`Imputation::Zero`].
    pub fn new(cfg: WindowConfig, fcfg: FeatureConfig, n_devices: u32) -> Self {
        FeaturePipeline {
            cfg,
            fcfg,
            imputation: Imputation::Zero,
            n_devices,
            watermark: SimTime::ZERO,
            current: 0,
            clients: HashMap::new(),
            server_acc: HashMap::new(),
            last_sample: HashMap::new(),
            emitted: 0,
            dropped: 0,
            ops_ingested: 0,
            rpcs_ingested: 0,
            samples_ingested: 0,
        }
    }

    /// Set the imputation policy applied by the batch vector assembly
    /// (recorded in the schema either way).
    pub fn with_imputation(mut self, imputation: Imputation) -> Self {
        self.imputation = imputation;
        self
    }

    /// The versioned schema describing every vector this pipeline
    /// assembles. Models trained on this pipeline's output carry this
    /// schema; the serving layer refuses any other.
    pub fn schema(&self) -> FeatureSchema {
        FeatureSchema::current(self.cfg, self.fcfg, self.imputation)
    }

    /// The window configuration.
    pub fn window_config(&self) -> WindowConfig {
        self.cfg
    }

    /// The feature-block configuration.
    pub fn feature_config(&self) -> FeatureConfig {
        self.fcfg
    }

    /// The imputation policy.
    pub fn imputation(&self) -> Imputation {
        self.imputation
    }

    /// Windows emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Windows emitted empty (no client or server content) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Telemetry snapshot of the pipeline's ingest/emit counters
    /// (`monitor.*` namespace). Take it before calling
    /// [`FeaturePipeline::finish`], which consumes the pipeline.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.put(
            "monitor.ops_ingested",
            MetricValue::Counter(self.ops_ingested),
        );
        snap.put(
            "monitor.rpcs_ingested",
            MetricValue::Counter(self.rpcs_ingested),
        );
        snap.put(
            "monitor.samples_ingested",
            MetricValue::Counter(self.samples_ingested),
        );
        snap.put(
            "monitor.windows_emitted",
            MetricValue::Counter(self.emitted),
        );
        snap.put(
            "monitor.windows_dropped",
            MetricValue::Counter(self.dropped),
        );
        snap
    }

    fn check_order(&mut self, t: SimTime) -> Result<(), QiError> {
        if t < self.watermark {
            return Err(QiError::monitor(
                "ingesting a window event",
                OutOfOrder {
                    t,
                    watermark: self.watermark,
                },
            ));
        }
        self.watermark = t;
        Ok(())
    }

    /// Advance to `t`'s window, emitting every completed window before it.
    fn roll_to(&mut self, t: SimTime, out: &mut Vec<EmittedWindow>) {
        let w = self.cfg.index_of(t);
        while self.current < w {
            out.push(self.flush_current());
        }
    }

    fn flush_current(&mut self) -> EmittedWindow {
        if self.clients.is_empty() && self.server_acc.is_empty() {
            self.dropped += 1;
        }
        let clients = std::mem::take(&mut self.clients);
        let servers = self
            .server_acc
            .drain()
            .map(|(dev, stats)| {
                let mut sw = ServerWindow {
                    samples: stats[0].count() as u32,
                    ..ServerWindow::default()
                };
                for (i, s) in stats.iter().enumerate() {
                    sw.series[i] = crate::server::SeriesStats {
                        sum: s.sum(),
                        mean: s.mean(),
                        std: s.std_dev(),
                    };
                }
                (dev, sw)
            })
            .collect();
        let window = self.current;
        self.current += 1;
        self.emitted += 1;
        EmittedWindow {
            window,
            clients,
            servers,
        }
    }

    fn client_cell(&mut self, app: AppId) -> &mut ClientWindow {
        let n = self.n_devices as usize;
        self.clients
            .entry(app)
            .or_insert_with(|| ClientWindow::sized(n))
    }

    /// Feed one completed client operation. Returns any windows that
    /// became final; fails if the event is behind the watermark.
    pub fn push_op(&mut self, op: &OpRecord) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(op.completed)?;
        self.ops_ingested += 1;
        let mut out = Vec::new();
        self.roll_to(op.completed, &mut out);
        self.client_cell(op.token.app).record_op(op);
        Ok(out)
    }

    /// Feed one issued RPC (attributes per-server targeting).
    pub fn push_rpc(&mut self, rpc: &RpcRecord) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(rpc.issued)?;
        self.rpcs_ingested += 1;
        let mut out = Vec::new();
        self.roll_to(rpc.issued, &mut out);
        self.client_cell(rpc.app).record_rpc(rpc);
        Ok(out)
    }

    /// Advance the watermark to `t`, emitting every window that closed
    /// strictly before it — even windows no event ever crossed. The
    /// online control loop calls this at each tick so a quiet window
    /// still closes (and still yields feature blocks for the apps that
    /// were active in it) at its boundary rather than whenever the next
    /// event happens to arrive.
    pub fn advance_to(&mut self, t: SimTime) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(t)?;
        let mut out = Vec::new();
        self.roll_to(t, &mut out);
        Ok(out)
    }

    /// Feed one per-second server sample.
    pub fn push_sample(&mut self, sample: &ServerSample) -> Result<Vec<EmittedWindow>, QiError> {
        self.check_order(sample.time)?;
        self.samples_ingested += 1;
        let mut out = Vec::new();
        // The interval (prev, cur] belongs to the window holding its end.
        if sample.time.as_nanos() > 0 {
            self.roll_to(SimTime(sample.time.as_nanos() - 1), &mut out);
        }
        if let Some(prev) = self.last_sample.get(&sample.dev) {
            let deltas = crate::server::delta_series_pub(prev, sample);
            let acc = self.server_acc.entry(sample.dev).or_default();
            for (stat, d) in acc.iter_mut().zip(deltas) {
                stat.push(d);
            }
        }
        self.last_sample.insert(sample.dev, *sample);
        Ok(out)
    }

    /// Signal end-of-stream: flush the final (partial) window.
    pub fn finish(mut self) -> Vec<EmittedWindow> {
        let mut out = Vec::new();
        if !self.clients.is_empty() || !self.server_acc.is_empty() {
            out.push(self.flush_current());
        }
        out
    }

    /// Assemble this window's per-app feature blocks under the
    /// pipeline's own configuration (see [`EmittedWindow::feature_blocks`]).
    pub fn feature_blocks(
        &self,
        ew: &EmittedWindow,
    ) -> Vec<(AppId, Vec<f32>, FeatureAvailability)> {
        ew.feature_blocks(self.fcfg, self.n_devices, self.cfg.window)
    }

    /// Drive pre-sorted event streams through the pipeline in canonical
    /// merge order: by time, ties broken samples → RPCs → ops (see the
    /// module docs for why boundary-time samples must go first).
    fn drive_merged(
        &mut self,
        ops: &[&OpRecord],
        rpcs: &[&RpcRecord],
        samples: &[&ServerSample],
        out: &mut Vec<EmittedWindow>,
    ) -> Result<(), QiError> {
        let (mut oi, mut ri, mut si) = (0usize, 0usize, 0usize);
        loop {
            let t_op = ops.get(oi).map(|o| o.completed);
            let t_rpc = rpcs.get(ri).map(|r| r.issued);
            let t_smp = samples.get(si).map(|s| s.time);
            let Some(next) = [t_smp, t_rpc, t_op].into_iter().flatten().min() else {
                return Ok(());
            };
            if t_smp == Some(next) {
                out.extend(self.push_sample(samples[si])?);
                si += 1;
            } else if t_rpc == Some(next) {
                out.extend(self.push_rpc(rpcs[ri])?);
                ri += 1;
            } else {
                out.extend(self.push_op(ops[oi])?);
                oi += 1;
            }
        }
    }

    /// Stream a finished trace's events through the pipeline in the
    /// order given (each stream must already be time-sorted, as
    /// simulator traces are), returning every window finalised so far.
    /// Call [`FeaturePipeline::finish`] afterwards for the final
    /// partial window. Errors if any stream is out of order.
    pub fn ingest_trace(&mut self, trace: &RunTrace) -> Result<Vec<EmittedWindow>, QiError> {
        let ops: Vec<&OpRecord> = trace.ops.iter().collect();
        let rpcs: Vec<&RpcRecord> = trace.rpcs.iter().collect();
        let samples: Vec<ServerSample> = trace.samples.to_vec();
        let sample_refs: Vec<&ServerSample> = samples.iter().collect();
        let mut out = Vec::new();
        self.drive_merged(&ops, &rpcs, &sample_refs, &mut out)?;
        Ok(out)
    }

    /// Batch entry point: run a finished trace through the pipeline and
    /// return every emitted window. Event streams are stable-sorted by
    /// time first, so any trace is accepted (already-sorted simulator
    /// traces keep their within-tie order and sort in linear time).
    pub fn run_windows(self, trace: &RunTrace) -> Vec<EmittedWindow> {
        self.run_streams(&trace.ops, &trace.rpcs, &trace.samples.to_vec())
    }

    /// Like [`FeaturePipeline::run_windows`] over bare event slices —
    /// what the batch adapters use to feed only the streams they own.
    pub fn run_streams(
        mut self,
        ops: &[OpRecord],
        rpcs: &[RpcRecord],
        samples: &[ServerSample],
    ) -> Vec<EmittedWindow> {
        let mut ops: Vec<&OpRecord> = ops.iter().collect();
        ops.sort_by_key(|o| o.completed);
        let mut rpcs: Vec<&RpcRecord> = rpcs.iter().collect();
        rpcs.sort_by_key(|r| r.issued);
        let mut samples: Vec<&ServerSample> = samples.iter().collect();
        samples.sort_by_key(|s| s.time);
        let mut out = Vec::new();
        self.drive_merged(&ops, &rpcs, &samples, &mut out)
            .expect("sorted streams cannot be out of order");
        out.extend(self.finish());
        out
    }

    /// Batch entry point: assemble, for every window in which `target`
    /// completed operations or issued RPCs, the flattened per-server
    /// feature block (`n_devices × features`), applying the pipeline's
    /// imputation policy to missing server blocks. This is the vector
    /// assembly the dataset layer trains on — built from the same
    /// emitted windows the serving layer predicts on.
    pub fn run_vectors(self, trace: &RunTrace, target: AppId) -> HashMap<u64, Vec<f32>> {
        let (cfg, fcfg, n_devices, imputation) =
            (self.cfg, self.fcfg, self.n_devices, self.imputation);
        let windows = self.run_windows(trace);
        let flen = fcfg.len();
        let mut out = HashMap::new();
        // (window, device index) pairs whose server block was missing.
        let mut holes: Vec<(u64, usize)> = Vec::new();
        for ew in &windows {
            let Some(client) = ew.clients.get(&target) else {
                continue;
            };
            let mut block = Vec::with_capacity(n_devices as usize * flen);
            for d in 0..n_devices {
                let dev = DeviceId(d);
                let (v, avail) =
                    server_vector_masked(fcfg, Some(client), ew.servers.get(&dev), dev, cfg.window);
                if fcfg.server && !avail.server {
                    holes.push((ew.window, d as usize));
                }
                block.extend(v);
            }
            out.insert(ew.window, block);
        }
        if imputation == Imputation::DeviceMean && !holes.is_empty() {
            impute_device_means(&mut out, &holes, n_devices as usize, flen);
        }
        out
    }
}

/// Back-fill missing server blocks with per-device means. The server
/// block occupies the last [`N_SERVER`] cells of each per-device slice;
/// only windows/devices listed in `holes` are rewritten, and only from
/// windows *not* listed there (so imputed zeros never feed the means).
fn impute_device_means(
    blocks: &mut HashMap<u64, Vec<f32>>,
    holes: &[(u64, usize)],
    n_devices: usize,
    flen: usize,
) {
    let hole_set: std::collections::HashSet<(u64, usize)> = holes.iter().copied().collect();
    let srv_off = flen - N_SERVER;
    for d in 0..n_devices {
        let mut sum = vec![0.0f64; N_SERVER];
        let mut n = 0u64;
        for (&w, block) in blocks.iter() {
            if hole_set.contains(&(w, d)) {
                continue;
            }
            let base = d * flen + srv_off;
            for (acc, &x) in sum.iter_mut().zip(&block[base..base + N_SERVER]) {
                *acc += x as f64;
            }
            n += 1;
        }
        if n == 0 {
            continue; // no donor windows: leave the zeros in place
        }
        let mean: Vec<f32> = sum.iter().map(|&s| (s / n as f64) as f32).collect();
        for &(w, hd) in holes {
            if hd != d {
                continue;
            }
            if let Some(block) = blocks.get_mut(&w) {
                let base = d * flen + srv_off;
                block[base..base + N_SERVER].copy_from_slice(&mean);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::OpToken;
    use qi_pfs::ops::{OpKind, RunTrace};
    use qi_simkit::time::SimDuration;

    fn pipeline(wcfg: WindowConfig, n_devices: u32) -> FeaturePipeline {
        FeaturePipeline::new(wcfg, FeatureConfig::default(), n_devices)
    }

    fn op(app: u32, seq: u64, completed_ms: u64) -> OpRecord {
        OpRecord {
            token: OpToken {
                app: AppId(app),
                rank: 0,
                seq,
            },
            kind: OpKind::Read,
            bytes: 100,
            issued: SimTime::from_millis(completed_ms.saturating_sub(5)),
            completed: SimTime::from_millis(completed_ms),
        }
    }

    #[test]
    fn windows_emit_when_complete() {
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        assert!(m.push_op(&op(0, 0, 100)).expect("in order").is_empty());
        assert!(m.push_op(&op(0, 1, 900)).expect("in order").is_empty());
        // Crossing into window 2 finalises windows 0 and 1.
        let emitted = m.push_op(&op(0, 2, 2100)).expect("in order");
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].window, 0);
        assert_eq!(emitted[0].clients[&AppId(0)].reads, 2);
        assert_eq!(emitted[1].window, 1);
        assert!(emitted[1].clients.is_empty());
        let rest = m.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].window, 2);
        assert_eq!(rest[0].clients[&AppId(0)].reads, 1);
    }

    #[test]
    fn telemetry_counts_ingest_emits_and_drops() {
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 100)).expect("in order");
        // Jumping to second 5 flushes windows 0..=4; 1..=4 are empty.
        let emitted = m.push_op(&op(0, 1, 5_100)).expect("in order");
        assert_eq!(emitted.len(), 5);
        let snap = m.metrics_snapshot();
        assert_eq!(snap.counter("monitor.ops_ingested"), Some(2));
        assert_eq!(snap.counter("monitor.rpcs_ingested"), Some(0));
        assert_eq!(snap.counter("monitor.samples_ingested"), Some(0));
        assert_eq!(snap.counter("monitor.windows_emitted"), Some(5));
        assert_eq!(snap.counter("monitor.windows_dropped"), Some(4));
        assert_eq!(m.emitted(), 5);
        assert_eq!(m.dropped(), 4);
    }

    #[test]
    fn out_of_order_input_is_an_error() {
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 500)).expect("in order");
        let err = m.push_op(&op(0, 1, 400)).expect_err("behind watermark");
        assert!(err.to_string().contains("out of order"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn event_exactly_at_the_watermark_is_accepted() {
        // The watermark is the latest time seen; an event AT that time
        // is in order (ties are legal), only strictly-behind is not.
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 500)).expect("in order");
        m.push_op(&op(1, 0, 500))
            .expect("tie at watermark accepted");
        m.push_op(&op(0, 1, 500)).expect("repeated tie accepted");
        let rest = m.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].clients[&AppId(0)].reads, 2);
        assert_eq!(rest[0].clients[&AppId(1)].reads, 1);
    }

    #[test]
    fn out_of_order_error_carries_the_exact_times() {
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 750)).expect("in order");
        let err = m.push_op(&op(0, 1, 749)).expect_err("behind watermark");
        let src = std::error::Error::source(&err).expect("wraps OutOfOrder");
        let ooo = src.downcast_ref::<OutOfOrder>().expect("OutOfOrder cause");
        assert_eq!(ooo.t, SimTime::from_millis(749));
        assert_eq!(ooo.watermark, SimTime::from_millis(750));
        // The rejected event must not have been ingested.
        assert_eq!(
            m.metrics_snapshot().counter("monitor.ops_ingested"),
            Some(1)
        );
    }

    #[test]
    fn far_ahead_event_flushes_each_cell_exactly_once() {
        // Jump 10 windows ahead; every (app, window) cell must come out
        // exactly once across the whole stream, including the final
        // partial window from finish().
        let mut m = pipeline(WindowConfig::seconds(1), 4);
        m.push_op(&op(0, 0, 100)).expect("in order");
        m.push_op(&op(1, 0, 200)).expect("in order");
        let mut emitted = m.push_op(&op(0, 1, 10_500)).expect("far ahead");
        assert_eq!(emitted.len(), 10, "windows 0..=9 finalised");
        emitted.extend(m.finish());
        let mut cells = std::collections::HashSet::new();
        for ew in &emitted {
            for app in ew.clients.keys() {
                assert!(
                    cells.insert((*app, ew.window)),
                    "cell ({app:?}, {}) emitted twice",
                    ew.window
                );
            }
        }
        assert_eq!(cells.len(), 3, "(0,0), (1,0) and (0,10)");
        assert!(cells.contains(&(AppId(0), 0)));
        assert!(cells.contains(&(AppId(1), 0)));
        assert!(cells.contains(&(AppId(0), 10)));
        // Window indices themselves are each emitted exactly once too.
        let mut windows: Vec<u64> = emitted.iter().map(|e| e.window).collect();
        windows.dedup();
        assert_eq!(windows.len(), emitted.len());
    }

    #[test]
    fn feature_blocks_cover_active_apps_in_id_order() {
        let mut m = pipeline(WindowConfig::seconds(1), 2);
        m.push_op(&op(3, 0, 100)).expect("in order");
        m.push_op(&op(1, 0, 200)).expect("in order");
        let cfg = m.feature_config();
        let blocks_of = |ew: &EmittedWindow| ew.feature_blocks(cfg, 2, SimDuration::from_secs(1));
        let emitted = m.finish();
        assert_eq!(emitted.len(), 1);
        let blocks = blocks_of(&emitted[0]);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].0, AppId(1), "sorted by app id");
        assert_eq!(blocks[1].0, AppId(3));
        for (_, block, avail) in &blocks {
            assert_eq!(block.len(), 2 * cfg.len());
            assert!(avail.client, "client window present");
            assert!(!avail.server, "no samples pushed: server block absent");
        }
        // cl_reads of app 1's block is the op count.
        assert_eq!(blocks[0].1[0], 1.0);
    }

    #[test]
    fn server_samples_stream_into_window_stats() {
        use qi_pfs::queue::DeviceCounters;
        let mk = |sec: u64, reads: u64| ServerSample {
            time: SimTime::from_secs(sec),
            dev: DeviceId(0),
            counters: DeviceCounters {
                reads_completed: reads,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        };
        let mut m = pipeline(WindowConfig::seconds(2), 1);
        let mut emitted = Vec::new();
        emitted.extend(m.push_sample(&mk(1, 10)).expect("in order"));
        emitted.extend(m.push_sample(&mk(2, 30)).expect("in order"));
        emitted.extend(m.push_sample(&mk(3, 60)).expect("in order")); // finalises window 0
        emitted.extend(m.push_sample(&mk(5, 100)).expect("in order")); // finalises window 1
        assert_eq!(emitted.len(), 2);
        assert_eq!(emitted[0].window, 0);
        let w0 = &emitted[0].servers[&DeviceId(0)];
        assert_eq!(w0.series[0].sum, 20.0); // delta 10→30
        assert_eq!(emitted[1].window, 1);
        let w1 = &emitted[1].servers[&DeviceId(0)];
        assert_eq!(w1.series[0].sum, 30.0); // delta 30→60
    }

    #[test]
    fn boundary_tie_puts_sample_delta_in_the_earlier_window() {
        // A sample at exactly t = 1s describes the interval (0s, 1s],
        // which belongs to window 0; an op completing at the same 1s
        // instant belongs to window 1. The canonical merge must
        // accumulate the sample's delta before the op rolls the window,
        // matching the batch semantics exactly.
        use qi_pfs::queue::DeviceCounters;
        let mk = |sec: u64, reads: u64| ServerSample {
            time: SimTime::from_secs(sec),
            dev: DeviceId(0),
            counters: DeviceCounters {
                reads_completed: reads,
                ..DeviceCounters::default()
            },
            dirty_bytes: 0,
            throttled_now: 0,
        };
        let mut trace = RunTrace::default();
        trace.samples.push(mk(0, 0));
        trace.samples.push(mk(1, 40));
        trace.ops.push(op(0, 0, 1_000)); // completes exactly at the boundary
        let emitted = pipeline(WindowConfig::seconds(1), 1).run_windows(&trace);
        let w0 = emitted.iter().find(|e| e.window == 0).expect("window 0");
        assert_eq!(
            w0.servers[&DeviceId(0)].series[0].sum,
            40.0,
            "boundary sample's delta lands in window 0"
        );
        assert!(w0.clients.is_empty(), "the op belongs to window 1");
        let w1 = emitted.iter().find(|e| e.window == 1).expect("window 1");
        assert_eq!(w1.clients[&AppId(0)].reads, 1);
        // And the batch adapter sees the identical split.
        let batch =
            crate::server::server_windows(&trace.samples.to_vec(), WindowConfig::seconds(1));
        assert_eq!(batch[&(DeviceId(0), 0)].series[0].sum, 40.0);
        assert!(!batch.contains_key(&(DeviceId(0), 1)));
    }

    #[test]
    fn schema_reflects_pipeline_configuration() {
        let p = pipeline(WindowConfig::seconds(1), 4).with_imputation(Imputation::DeviceMean);
        let s = p.schema();
        assert_eq!(s.window_config(), Some(WindowConfig::seconds(1)));
        assert_eq!(s.feature_config(), FeatureConfig::default());
        assert_eq!(s.imputation(), Imputation::DeviceMean);
        assert_eq!(s.vector_len(), crate::features::N_FEATURES);
    }

    #[test]
    fn run_windows_accepts_an_unsorted_trace() {
        // Batch adapters sort; hand-built traces need not be ordered.
        let mut trace = RunTrace::default();
        trace.ops.push(op(0, 0, 2_500));
        trace.ops.push(op(0, 1, 300));
        let emitted = pipeline(WindowConfig::seconds(1), 1).run_windows(&trace);
        let w0 = emitted.iter().find(|e| e.window == 0).expect("window 0");
        assert_eq!(w0.clients[&AppId(0)].reads, 1);
        let w2 = emitted.iter().find(|e| e.window == 2).expect("window 2");
        assert_eq!(w2.clients[&AppId(0)].reads, 1);
    }
}
