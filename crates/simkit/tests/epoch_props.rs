//! Property tests for the conservative epoch scheduler and the
//! cross-shard mailbox: arbitrary interleaved sends must never be
//! delivered before their timestamp, and the drain order must match a
//! naive sorted-`Vec` reference model.

use proptest::prelude::*;
use qi_simkit::epoch::{EpochSchedule, Mailbox};
use qi_simkit::time::{SimDuration, SimTime};

/// One cross-shard send: issued by `shard` at `sent`, delivered no
/// earlier than `sent + delay` where `delay ≥ lookahead`.
#[derive(Clone, Debug)]
struct Send {
    shard: u8,
    sent: u64,
    delay: u64,
}

const LOOKAHEAD: u64 = 100_000; // 100 µs in nanoseconds

fn sends(max: usize) -> impl Strategy<Value = Vec<Send>> {
    // Sends happen strictly after the run start: events at exactly t=0
    // are pre-run injections, which the coordinator routes before the
    // first epoch rather than through the mailbox.
    prop::collection::vec((0u8..4, 1u64..5_000_000, LOOKAHEAD..400_000), 1..max).prop_map(|raw| {
        raw.into_iter()
            .map(|(shard, sent, delay)| Send { shard, sent, delay })
            .collect()
    })
}

proptest! {
    /// Drive an epoch loop: at each barrier, sends issued inside the
    /// finished epoch enter the mailbox (in canonical shard order) and
    /// deliveries due by the *next* boundary drain. No delivery may be
    /// observed before its timestamp, at a barrier later than its
    /// timestamp's epoch, or out of `(time, stamp)` order.
    #[test]
    fn mailbox_never_delivers_early(sends in sends(64)) {
        let mut sends = sends;
        let schedule = EpochSchedule::new(SimDuration::from_nanos(LOOKAHEAD))
            .with_tick(SimDuration::from_millis(1), SimDuration::from_nanos(1));
        // Canonical barrier ordering: by send time, ties by shard id —
        // the same discipline the cluster coordinator uses.
        sends.sort_by_key(|s| (s.sent, s.shard));
        let horizon = sends
            .iter()
            .map(|s| s.sent + s.delay)
            .max()
            .unwrap_or(0);

        let mut mailbox: Mailbox<(u8, u64)> = Mailbox::new();
        let mut reference: Vec<(u64, usize)> = Vec::new(); // (deliver, push idx)
        let mut pushed = 0usize;
        let mut delivered: Vec<(u64, u8, u64)> = Vec::new(); // (deliver, shard, sent)
        let mut b = SimTime::ZERO;
        let mut next_send = 0usize;

        while b.as_nanos() <= horizon {
            let e = schedule.next_after(b);
            prop_assert!(e - b <= SimDuration::from_nanos(LOOKAHEAD));
            // Barrier at `e`: collect sends issued in (b, e]. A send at
            // exactly SimTime::ZERO belongs to the first epoch too.
            while next_send < sends.len() {
                let s = &sends[next_send];
                if SimTime(s.sent) > e {
                    break;
                }
                let deliver = s.sent + s.delay;
                // Conservative safety: the delivery lands strictly
                // after the epoch that produced it.
                prop_assert!(deliver > e.as_nanos());
                mailbox.push(SimTime(deliver), (s.shard, s.sent));
                reference.push((deliver, pushed));
                pushed += 1;
                next_send += 1;
            }
            // Drain deliveries due by the end of the NEXT epoch.
            let ne = schedule.next_after(e);
            while let Some((at, (shard, sent))) = mailbox.pop_until(ne) {
                prop_assert!(at.as_nanos() >= sent + LOOKAHEAD, "delivered early");
                prop_assert!(at > e, "delivered inside the sending epoch");
                delivered.push((at.as_nanos(), shard, sent));
            }
            b = e;
        }
        while let Some((at, (shard, sent))) = mailbox.pop_until(SimTime::MAX) {
            delivered.push((at.as_nanos(), shard, sent));
        }

        // Drain order matches the sorted-Vec reference model: stable
        // sort by delivery time, ties by push (stamp) order.
        reference.sort_by_key(|&(deliver, idx)| (deliver, idx));
        prop_assert_eq!(delivered.len(), reference.len());
        for (got, &(want_at, idx)) in delivered.iter().zip(reference.iter()) {
            prop_assert_eq!(got.0, want_at);
            let s = &sends[idx];
            prop_assert_eq!(got.1, s.shard);
            prop_assert_eq!(got.2, s.sent);
        }
    }

    /// The boundary sequence is strictly increasing, gap-bounded by the
    /// lookahead, and `last_before` always names the base of the epoch
    /// containing its argument.
    #[test]
    fn schedule_boundaries_are_consistent(
        start in 0u64..10_000_000,
        steps in 1usize..200,
        with_tick in 0u32..2,
        tick_interval in 1_000u64..2_000_000,
    ) {
        let tick = (with_tick == 1).then_some(tick_interval);
        let mut schedule = EpochSchedule::new(SimDuration::from_nanos(LOOKAHEAD));
        if let Some(c) = tick {
            schedule = schedule.with_tick(
                SimDuration::from_nanos(c),
                SimDuration::from_nanos(1.min(c - 1)),
            );
        }
        let mut b = SimTime(start);
        for _ in 0..steps {
            let n = schedule.next_after(b);
            prop_assert!(n > b);
            prop_assert!(n - b <= SimDuration::from_nanos(LOOKAHEAD));
            // Fast-forward consistency: the epoch restarted at
            // `last_before(t)` still covers t for any t in (b, n].
            let t = n;
            let base = schedule.last_before(t);
            prop_assert!(base < t);
            prop_assert!(schedule.next_after(base) >= t);
            b = n;
        }
    }
}
