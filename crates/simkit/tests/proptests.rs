//! Property-based tests for the simulation core.

use proptest::prelude::*;
use qi_simkit::event::EventQueue;
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::stats::{moving_average, percentile, Histogram, OnlineStats};
use qi_simkit::table::AsciiTable;
use qi_simkit::time::{SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, with ties in
    /// insertion order.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "tie broken out of insertion order");
                }
            }
            prop_assert_eq!(t, SimTime(times[i]));
            last = Some((t, i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// pop_until never delivers an event beyond the deadline and always
    /// advances the clock exactly to the deadline when it returns None.
    #[test]
    fn pop_until_respects_any_deadline(
        times in prop::collection::vec(0u64..1000, 1..50),
        deadline in 0u64..1200,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime(t), t);
        }
        let deadline = SimTime(deadline);
        let mut delivered = 0;
        while let Some((t, _)) = q.pop_until(deadline) {
            prop_assert!(t <= deadline);
            delivered += 1;
        }
        prop_assert_eq!(q.now(), deadline.max(q.now()));
        let expect = times.iter().filter(|&&t| SimTime(t) <= deadline).count();
        prop_assert_eq!(delivered, expect);
    }

    /// Merging two Welford accumulators equals accumulating sequentially.
    #[test]
    fn stats_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_is_monotone_and_bounded(
        xs in prop::collection::vec(-1e5f64..1e5, 1..80),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// Moving averages stay within the input's min/max and preserve
    /// length.
    #[test]
    fn moving_average_is_bounded(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        w in 1usize..20,
    ) {
        let sm = moving_average(&xs, w);
        prop_assert_eq!(sm.len(), xs.len());
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in &sm {
            prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
        }
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_counts(
        xs in prop::collection::vec(-100.0f64..200.0, 0..300),
        buckets in 1usize..32,
    ) {
        let mut h = Histogram::new(0.0, 100.0, buckets);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let bucketed: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// CSV rendering always yields header + one line per row, and the
    /// ASCII table has constant line width.
    #[test]
    fn tables_render_consistently(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9 ,\"]{0,12}", 3), 0..20),
    ) {
        let mut t = AsciiTable::new(vec!["a", "b", "c"]);
        for r in &rows {
            t.add_row(r.clone());
        }
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        let rendered = t.render();
        let widths: Vec<usize> = rendered.lines().map(|l| l.chars().count()).collect();
        prop_assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    /// Duration arithmetic round-trips through seconds within 1 ns.
    #[test]
    fn duration_seconds_round_trip(ns in 0u64..10_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        prop_assert!(back.as_nanos().abs_diff(ns) <= 1);
    }

    /// Token-bucket admission, for ANY request schedule: grants are
    /// non-decreasing (FIFO — a later request never overtakes an earlier
    /// one), each grant is at or after its request, and the total cost
    /// granted by the last grant instant never exceeds the initial burst
    /// plus what the configured rate could have refilled — i.e. the
    /// long-run admitted rate is bounded by `rate`.
    #[test]
    fn token_bucket_grants_fifo_and_rate_bounded(
        rate in 0.5f64..500.0,
        burst in 0.1f64..100.0,
        arrivals in prop::collection::vec((0u64..200_000_000, 0.01f64..20.0), 1..60),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut last_grant = SimTime::ZERO;
        let mut granted_cost = 0.0f64;
        for &(gap_ns, cost) in &arrivals {
            now += SimDuration::from_nanos(gap_ns);
            let grant = bucket.earliest(now, cost);
            prop_assert!(grant >= now, "grant {grant} before request {now}");
            prop_assert!(
                grant >= last_grant,
                "grant {grant} overtook earlier grant {last_grant}"
            );
            last_grant = grant;
            granted_cost += cost;
            // Capacity available by the grant instant: the initial
            // burst plus rate * elapsed (1e-6 covers f64 rounding).
            let capacity = burst + rate * last_grant.as_secs_f64();
            prop_assert!(
                granted_cost <= capacity + 1e-6,
                "granted {granted_cost} tokens by {last_grant}, capacity only {capacity}"
            );
        }
    }
}
