//! Property-based tests for the simulation core.

use proptest::prelude::*;
use qi_simkit::event::{EventQueue, QueueBackend};
use qi_simkit::ratelimit::TokenBucket;
use qi_simkit::reference::ReferenceQueue;
use qi_simkit::stats::{moving_average, percentile, Histogram, OnlineStats};
use qi_simkit::table::AsciiTable;
use qi_simkit::time::{SimDuration, SimTime};

/// One step of an interleaved queue workout: schedule an event at
/// `now + delta`, or pop (a `delta` in the sentinel band means pop).
#[derive(Clone, Debug)]
enum QueueOp {
    Push(u64),
    Pop,
}

fn queue_ops(max_len: usize) -> impl Strategy<Value = Vec<QueueOp>> {
    // Deltas span the calendar wheel's interesting bands: same-granule
    // ties (0), level-0/1/2 residents, beyond-horizon overflow, and the
    // u64::MAX extreme. A (selector, raw) pair per op stands in for
    // upstream's weighted `prop_oneof!`.
    prop::collection::vec((0u32..100, 0u64..u64::MAX), 1..max_len).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, r)| match sel {
                0..=39 => QueueOp::Pop,
                40..=49 => QueueOp::Push(0),
                50..=74 => QueueOp::Push(1 + r % 1_000_000),
                75..=89 => QueueOp::Push(1_000_000 + r % 99_000_000),
                90..=97 => QueueOp::Push(5_000_000_000 + r % 95_000_000_000),
                _ => QueueOp::Push(u64::MAX),
            })
            .collect()
    })
}

proptest! {
    /// Satellite: arbitrary interleaved push/pop sequences through the
    /// calendar and heap backends against the naive sorted-`Vec` model —
    /// all three must emit the identical `(time, seq, event)` order,
    /// including equal-timestamp FIFO ties and `u64::MAX` deltas
    /// (clamped to absolute `u64::MAX`, the zero-width far edge).
    #[test]
    fn backends_match_reference_model_interleaved(ops in queue_ops(120)) {
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        let mut refq = EventQueue::with_backend(QueueBackend::Reference);
        // A standalone naive model driven with the same (at, seq) pairs
        // the queues compute, double-checking the Reference backend too.
        let mut model: ReferenceQueue<usize> = ReferenceQueue::new();
        let mut seq = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match *op {
                QueueOp::Push(delta) => {
                    let at = SimTime(cal.now().as_nanos().saturating_add(delta));
                    cal.schedule(at, i);
                    heap.schedule(at, i);
                    refq.schedule(at, i);
                    model.insert(at.as_nanos(), seq, i);
                    seq += 1;
                }
                QueueOp::Pop => {
                    let want = model.pop().map(|(at, _, e)| (SimTime(at), e));
                    prop_assert_eq!(cal.pop(), want, "calendar diverged at op {}", i);
                    prop_assert_eq!(heap.pop(), want, "heap diverged at op {}", i);
                    prop_assert_eq!(refq.pop(), want, "reference diverged at op {}", i);
                }
            }
            prop_assert_eq!(cal.pending(), model.len());
            prop_assert_eq!(cal.peek_time(), model.peek().map(|(at, _)| SimTime(at)));
            prop_assert_eq!(heap.peek_time(), cal.peek_time());
        }
        // Drain: the tails must agree too.
        loop {
            let want = model.pop().map(|(at, _, e)| (SimTime(at), e));
            prop_assert_eq!(cal.pop(), want);
            prop_assert_eq!(heap.pop(), want);
            prop_assert_eq!(refq.pop(), want);
            if want.is_none() {
                break;
            }
        }
        prop_assert_eq!(cal.processed(), heap.processed());
        prop_assert_eq!(cal.now(), heap.now());
    }

    /// Zero-time and max-time absolute schedules agree across backends
    /// (bulk load, no interleaving — stresses the initial wheel state).
    #[test]
    fn backends_match_on_extreme_absolute_times(
        raw_times in prop::collection::vec((0u32..35, 0u64..u64::MAX), 1..60),
    ) {
        let times: Vec<u64> = raw_times
            .into_iter()
            .map(|(sel, r)| match sel {
                0..=4 => 0,
                5..=9 => u64::MAX,
                10..=14 => u64::MAX - 1,
                15..=24 => r % 1_000,
                _ => r,
            })
            .collect();
        let mut cal = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap = EventQueue::with_backend(QueueBackend::Heap);
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime(t), i);
            heap.schedule(SimTime(t), i);
        }
        for _ in 0..times.len() {
            prop_assert_eq!(cal.pop(), heap.pop());
        }
        prop_assert!(cal.pop().is_none() && heap.pop().is_none());
    }

    /// The capacity contract holds on every backend for any
    /// construction capacity and reserve request.
    #[test]
    fn capacity_contract_any_backend(
        cap in 0usize..600,
        extra in 0usize..600,
        n in 0usize..300,
    ) {
        for b in [QueueBackend::Calendar, QueueBackend::Heap, QueueBackend::Reference] {
            let mut q = EventQueue::with_capacity_and_backend(cap, b);
            prop_assert!(q.capacity() >= cap);
            for i in 0..n {
                q.schedule(SimTime((i as u64) * 17 % 1000), i);
            }
            q.reserve(extra);
            prop_assert!(q.capacity() >= q.pending() + extra);
            let before = q.capacity();
            while q.pop().is_some() {}
            prop_assert!(q.capacity() >= before.min(cap.max(n + extra)));
            prop_assert!(q.capacity() >= cap);
        }
    }

    /// Events always pop in non-decreasing time order, with ties in
    /// insertion order.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut count = 0;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "tie broken out of insertion order");
                }
            }
            prop_assert_eq!(t, SimTime(times[i]));
            last = Some((t, i));
            count += 1;
        }
        prop_assert_eq!(count, times.len());
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// pop_until never delivers an event beyond the deadline and always
    /// advances the clock exactly to the deadline when it returns None.
    #[test]
    fn pop_until_respects_any_deadline(
        times in prop::collection::vec(0u64..1000, 1..50),
        deadline in 0u64..1200,
    ) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime(t), t);
        }
        let deadline = SimTime(deadline);
        let mut delivered = 0;
        while let Some((t, _)) = q.pop_until(deadline) {
            prop_assert!(t <= deadline);
            delivered += 1;
        }
        prop_assert_eq!(q.now(), deadline.max(q.now()));
        let expect = times.iter().filter(|&&t| SimTime(t) <= deadline).count();
        prop_assert_eq!(delivered, expect);
    }

    /// Merging two Welford accumulators equals accumulating sequentially.
    #[test]
    fn stats_merge_is_associative(
        xs in prop::collection::vec(-1e6f64..1e6, 0..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentile_is_monotone_and_bounded(
        xs in prop::collection::vec(-1e5f64..1e5, 1..80),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// Moving averages stay within the input's min/max and preserve
    /// length.
    #[test]
    fn moving_average_is_bounded(
        xs in prop::collection::vec(-1e4f64..1e4, 1..100),
        w in 1usize..20,
    ) {
        let sm = moving_average(&xs, w);
        prop_assert_eq!(sm.len(), xs.len());
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &v in &sm {
            prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
        }
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_counts(
        xs in prop::collection::vec(-100.0f64..200.0, 0..300),
        buckets in 1usize..32,
    ) {
        let mut h = Histogram::new(0.0, 100.0, buckets);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let bucketed: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucketed + h.underflow() + h.overflow(), xs.len() as u64);
    }

    /// CSV rendering always yields header + one line per row, and the
    /// ASCII table has constant line width.
    #[test]
    fn tables_render_consistently(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9 ,\"]{0,12}", 3), 0..20),
    ) {
        let mut t = AsciiTable::new(vec!["a", "b", "c"]);
        for r in &rows {
            t.add_row(r.clone());
        }
        let csv = t.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        let rendered = t.render();
        let widths: Vec<usize> = rendered.lines().map(|l| l.chars().count()).collect();
        prop_assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    /// Duration arithmetic round-trips through seconds within 1 ns.
    #[test]
    fn duration_seconds_round_trip(ns in 0u64..10_000_000_000) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        prop_assert!(back.as_nanos().abs_diff(ns) <= 1);
    }

    /// Token-bucket admission, for ANY request schedule: grants are
    /// non-decreasing (FIFO — a later request never overtakes an earlier
    /// one), each grant is at or after its request, and the total cost
    /// granted by the last grant instant never exceeds the initial burst
    /// plus what the configured rate could have refilled — i.e. the
    /// long-run admitted rate is bounded by `rate`.
    #[test]
    fn token_bucket_grants_fifo_and_rate_bounded(
        rate in 0.5f64..500.0,
        burst in 0.1f64..100.0,
        arrivals in prop::collection::vec((0u64..200_000_000, 0.01f64..20.0), 1..60),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = SimTime::ZERO;
        let mut last_grant = SimTime::ZERO;
        let mut granted_cost = 0.0f64;
        for &(gap_ns, cost) in &arrivals {
            now += SimDuration::from_nanos(gap_ns);
            let grant = bucket.earliest(now, cost);
            prop_assert!(grant >= now, "grant {grant} before request {now}");
            prop_assert!(
                grant >= last_grant,
                "grant {grant} overtook earlier grant {last_grant}"
            );
            last_grant = grant;
            granted_cost += cost;
            // Capacity available by the grant instant: the initial
            // burst plus rate * elapsed (1e-6 covers f64 rounding).
            let capacity = burst + rate * last_grant.as_secs_f64();
            prop_assert!(
                granted_cost <= capacity + 1e-6,
                "granted {granted_cost} tokens by {last_grant}, capacity only {capacity}"
            );
        }
    }
}
