//! Online and batch statistics.
//!
//! The monitors summarise per-second samples as sum/mean/standard-deviation
//! over a time window (paper §III-B); [`OnlineStats`] provides that with
//! Welford's numerically stable single-pass algorithm. [`Histogram`] and
//! [`percentile`] support the experiment harnesses.

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean (0 when empty, so windows with no samples vectorise cleanly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Raw second central moment (`Σ(x − mean)²`), for serialisation.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuild an accumulator from its raw parts, the inverse of reading
    /// `count`/`mean()`/`m2()`/`sum()`/`min()`/`max()` back out. Used by
    /// snapshot deserialisation; an empty accumulator (`count == 0`)
    /// restores the `±inf` min/max sentinels regardless of the arguments.
    pub fn from_parts(count: u64, mean: f64, m2: f64, sum: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return OnlineStats::new();
        }
        OnlineStats {
            count,
            mean,
            m2,
            sum,
            min,
            max,
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// `p`-th percentile (0..=100) of a sample, by linear interpolation.
/// Returns 0 for an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Fixed-width histogram over `[lo, hi)` with an overflow/underflow bucket
/// at each end.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `n_buckets` equal-width buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(hi > lo && n_buckets > 0);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n_buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.buckets.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.buckets.len() - 1);
            self.buckets[i] += 1;
        }
    }

    /// Counts per bucket (not including under/overflow).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Lower bound of the bucketed range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper (exclusive) bound of the bucketed range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Rebuild a histogram from its raw parts (snapshot deserialisation).
    pub fn from_parts(lo: f64, hi: f64, buckets: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        assert!(hi > lo && !buckets.is_empty());
        Histogram {
            lo,
            hi,
            buckets,
            underflow,
            overflow,
        }
    }

    /// The `q`-th quantile (`0.0..=1.0`) estimated from the bucket
    /// counts by linear interpolation within the containing bucket.
    ///
    /// Out-of-range mass is pinned to the range edges: underflow counts
    /// resolve to `lo` and overflow counts to `hi`. Returns 0 for an
    /// empty histogram. This is the serving layer's latency-percentile
    /// primitive (p50/p95/p99 over queue-wait and inference-time
    /// distributions), so it must be a pure function of the counts.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 0-based, by nearest-rank with
        // interpolation: rank spans [0, total-1].
        let rank = q * (total - 1) as f64;
        let mut seen = 0u64;
        if (self.underflow as f64) > rank {
            return self.lo;
        }
        seen += self.underflow;
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c > 0 && (seen + c) as f64 > rank {
                // Interpolate within the bucket: the rank-th observation
                // sits `frac` of the way through this bucket's count.
                let frac = (rank - seen as f64 + 0.5) / c as f64;
                let lo_i = self.lo + w * i as f64;
                return lo_i + w * frac.clamp(0.0, 1.0);
            }
            seen += c;
        }
        self.hi
    }

    /// Merge counts from a histogram with identical bounds and bucket
    /// count (parallel reduction). Panics on shape mismatch.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.buckets.len() == other.buckets.len(),
            "histogram shape mismatch: [{}, {})x{} vs [{}, {})x{}",
            self.lo,
            self.hi,
            self.buckets.len(),
            other.lo,
            other.hi,
            other.buckets.len()
        );
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

/// Moving-average smoothing over a fixed window, as used to smooth the
/// per-operation series in the paper's Figure 1.
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() || window <= 1 {
        return series.to_vec();
    }
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for (i, &x) in series.iter().enumerate() {
        sum += x;
        if i >= window {
            sum -= series[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket_bounds(1), (2.0, 4.0));
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        // Uniform fill: quantiles track the value range closely.
        assert!((h.quantile(0.5) - 50.0).abs() < 10.0 + 1e-9);
        assert!(h.quantile(0.0) >= 0.0);
        assert!(h.quantile(1.0) <= 100.0);
        assert!(h.quantile(0.95) > h.quantile(0.5));
        // Monotone in q.
        let qs: Vec<f64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn quantile_handles_edges_and_overflow() {
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), 0.0);
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(-5.0); // underflow pins to lo
        assert_eq!(h.quantile(0.0), 0.0);
        let mut h = Histogram::new(0.0, 10.0, 5);
        for _ in 0..10 {
            h.record(99.0); // all overflow pins to hi
        }
        assert_eq!(h.quantile(0.5), 10.0);
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record(3.0);
        let q = h.quantile(0.5);
        assert!(
            (2.0..4.0).contains(&q),
            "single obs lands in its bucket, got {q}"
        );
    }

    #[test]
    fn moving_average_smooths() {
        let xs = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let sm = moving_average(&xs, 2);
        assert_eq!(sm.len(), xs.len());
        assert_eq!(sm[0], 0.0);
        for &v in &sm[1..] {
            assert!((v - 5.0).abs() < 1e-12);
        }
        assert_eq!(moving_average(&xs, 1), xs.to_vec());
    }
}
