//! A deliberately naive reference event queue.
//!
//! [`ReferenceQueue`] keeps every pending entry in one `Vec`, sorted on
//! each insert. It exists to be *obviously correct*, not fast: the
//! property tests and the differential replay harness compare the
//! production backends ([`BinaryHeap`] and the calendar wheel) against
//! this model, entry by entry. It is also selectable as a real
//! [`EventQueue`] backend (`QueueBackend::Reference`) so whole cluster
//! runs can be driven through it in tests.
//!
//! [`BinaryHeap`]: std::collections::BinaryHeap
//! [`EventQueue`]: crate::event::EventQueue

/// Sorted-`Vec` priority queue over `(time, seq)` with FIFO tie-break.
///
/// Entries are kept sorted *descending* so the minimum sits at the end
/// and `pop` is O(1); `insert` is O(n) — fine for a test double.
pub struct ReferenceQueue<E> {
    items: Vec<(u64, u64, E)>,
}

impl<E> Default for ReferenceQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        ReferenceQueue { items: Vec::new() }
    }

    /// Empty queue pre-sized for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ReferenceQueue {
            items: Vec::with_capacity(capacity),
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Entries the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.items.capacity()
    }

    /// Ensure room for `len() + additional` entries.
    pub fn reserve(&mut self, additional: usize) {
        self.items.reserve(additional);
    }

    /// Insert an entry. `seq` must be unique per queue (the caller —
    /// [`EventQueue`](crate::event::EventQueue) — hands out a fresh one
    /// per schedule call).
    pub fn insert(&mut self, at: u64, seq: u64, event: E) {
        // Descending order: larger (at, seq) first. `partition_point`
        // finds the first index whose key is <= (at, seq); inserting
        // there keeps the vector sorted and puts equal-time entries in
        // seq order (later seq closer to the front, popped later).
        let pos = self.items.partition_point(|&(a, s, _)| (a, s) > (at, seq));
        self.items.insert(pos, (at, seq, event));
    }

    /// The minimum `(at, seq)` entry, without removing it.
    pub fn peek(&self) -> Option<(u64, u64)> {
        self.items.last().map(|&(a, s, _)| (a, s))
    }

    /// Remove and return the minimum `(at, seq)` entry.
    pub fn pop(&mut self) -> Option<(u64, u64, E)> {
        self.items.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = ReferenceQueue::new();
        q.insert(5, 0, "a");
        q.insert(3, 1, "b");
        q.insert(5, 2, "c");
        q.insert(3, 3, "d");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(3, 1, "b"), (3, 3, "d"), (5, 0, "a"), (5, 2, "c")]
        );
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = ReferenceQueue::new();
        for (i, at) in [9u64, 2, 7, 2, 0].iter().enumerate() {
            q.insert(*at, i as u64, i);
        }
        while let Some((pa, ps)) = q.peek() {
            let (a, s, _) = q.pop().expect("peeked entry pops");
            assert_eq!((pa, ps), (a, s));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_is_respected() {
        let mut q: ReferenceQueue<u8> = ReferenceQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        q.reserve(128);
        assert!(q.capacity() >= 128);
    }
}
