//! A token-bucket rate limiter over simulated time.
//!
//! Used by the PFS server's per-application request scheduler (after the
//! classful token-bucket filter NRS policy of Qian et al., which the
//! reproduced paper cites as interference-mitigation machinery).

use crate::time::{SimDuration, SimTime};

/// A token bucket: `rate` tokens accrue per second up to `burst`;
/// requests consume tokens and are granted as soon as their cost is
/// covered (borrowing against future refill when necessary, which keeps
/// grants strictly FIFO).
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Bucket with `rate` tokens/second and `burst` capacity, starting
    /// full.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Configured rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last = now;
    }

    /// Charge `cost` tokens and return the earliest instant the request
    /// may proceed. Calls must have non-decreasing `now`.
    pub fn earliest(&mut self, now: SimTime, cost: f64) -> SimTime {
        assert!(cost >= 0.0);
        self.refill(now);
        let deficit = cost - self.tokens;
        self.tokens -= cost;
        if deficit <= 0.0 {
            now
        } else {
            now + SimDuration::from_secs_f64(deficit / self.rate)
        }
    }

    /// Tokens currently available (may be negative while borrowed).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_immediately() {
        let mut tb = TokenBucket::new(100.0, 50.0);
        let t0 = SimTime::ZERO;
        assert_eq!(tb.earliest(t0, 50.0), t0);
        // Bucket drained: the next request waits for refill.
        let grant = tb.earliest(t0, 100.0);
        assert!((grant.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_load_is_paced_at_the_rate() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        let mut now = SimTime::ZERO;
        let mut last_grant = SimTime::ZERO;
        // 20 requests of 100 tokens each = 2000 tokens; at 1000/s the
        // last grant must be ~1.9 s out.
        for _ in 0..20 {
            last_grant = tb.earliest(now, 100.0);
            now = SimTime(now.as_nanos() + 1_000_000); // 1 ms apart
        }
        assert!(
            (last_grant.as_secs_f64() - 1.9).abs() < 0.05,
            "last grant at {last_grant}"
        );
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut tb = TokenBucket::new(10.0, 30.0);
        let _ = tb.earliest(SimTime::ZERO, 30.0);
        assert!(tb.tokens() <= 0.0);
        // 100 s idle: refills to burst, not beyond.
        let t = SimTime::from_secs(100);
        assert_eq!(tb.earliest(t, 30.0), t);
        assert!(tb.tokens().abs() < 1e-9);
    }

    #[test]
    fn grants_are_fifo_under_borrowing() {
        let mut tb = TokenBucket::new(10.0, 10.0);
        let t0 = SimTime::ZERO;
        let g1 = tb.earliest(t0, 100.0);
        let g2 = tb.earliest(t0, 100.0);
        assert!(g2 > g1, "grants out of order");
    }

    #[test]
    fn zero_cost_is_free() {
        let mut tb = TokenBucket::new(1.0, 1.0);
        let t = SimTime::from_secs(5);
        assert_eq!(tb.earliest(t, 0.0), t);
    }
}
