//! Plain-text table rendering and CSV output for the experiment harnesses.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned ASCII table.
#[derive(Clone, Debug, Default)]
pub struct AsciiTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        AsciiTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; it is padded/truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut r: Vec<String> = row.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a `String` with `|`-separated, width-aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                let _ = write!(out, "| {:<w$} ", cell, w = widths[i]);
            }
            out.push_str("|\n");
        };
        fmt_row(&mut out, &self.header);
        for w in &widths {
            out.push('|');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("|\n");
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for commas/quotes/newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let push_row = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&mut out, &self.header);
        for row in &self.rows {
            push_row(&mut out, row);
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Format a float with `prec` decimals, rendering NaN/inf as "-".
pub fn fmt_f64(x: f64, prec: usize) -> String {
    if x.is_finite() {
        format!("{x:.prec$}")
    } else {
        "-".to_string()
    }
}

/// Format a byte count with a binary-unit suffix.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = AsciiTable::new(vec!["name", "value"]);
        t.add_row(vec!["alpha", "1"]);
        t.add_row(vec!["b", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("123456"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = AsciiTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["only-one"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = AsciiTable::new(vec!["k", "v"]);
        t.add_row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn write_csv_creates_dirs() {
        let dir = std::env::temp_dir().join("qi_table_test");
        let _ = fs::remove_dir_all(&dir);
        let mut t = AsciiTable::new(vec!["x"]);
        t.add_row(vec!["1"]);
        let path = dir.join("nested/out.csv");
        t.write_csv(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "x\n1\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(1536), "1.50 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }
}
