//! The discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(time, event)` pairs with a
//! monotonically advancing clock. Ties are broken by insertion order, so a
//! run is fully deterministic regardless of event payloads.
//!
//! Two production backends implement the same total order (plus a naive
//! [`ReferenceQueue`] double for tests):
//!
//! - [`QueueBackend::Heap`] — the original `BinaryHeap` over
//!   `(time, seq)`. O(log n) per operation, no assumptions about the
//!   event-time distribution.
//! - [`QueueBackend::Calendar`] — a hierarchical calendar queue (timing
//!   wheel): [`LEVELS`] levels of [`SLOTS`] time buckets each, bucket
//!   width growing by [`SLOTS`]× per level, with all entries stored in
//!   one slab. Near-future events (the overwhelming majority in a
//!   simulation whose in-flight horizon is microseconds to seconds) cost
//!   O(1) amortized; events beyond the wheel horizon (~4.3 s from the
//!   current minimum) fall back to a small auxiliary heap and migrate
//!   into the wheel lazily, so sparse far-future schedules (deadlines,
//!   fault windows) stay exact without forcing the wheel to span them.
//!
//! Both backends pop in strictly identical `(time, seq)` order — the
//! property tests in `tests/proptests.rs` and the differential replay
//! harness in the workspace `tests/sim_equivalence.rs` hold them to that,
//! so switching backends can never change observable simulation behavior.
//!
//! Capacity contract (all backends): `with_capacity(c)` guarantees
//! `capacity() >= c`; after `reserve(a)`, `capacity() >= pending() + a`;
//! and `capacity()` never decreases over the queue's lifetime — growth
//! cycles and drains never drop an earlier requested floor.
//!
//! [`ReferenceQueue`]: crate::reference::ReferenceQueue

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::reference::ReferenceQueue;
use crate::time::{SimDuration, SimTime};

/// Which data structure an [`EventQueue`] runs on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueueBackend {
    /// Hierarchical calendar queue with a far-horizon heap fallback.
    /// The default: O(1) amortized for simulation-shaped schedules.
    #[default]
    Calendar,
    /// The classic binary heap over `(time, seq)`.
    Heap,
    /// Naive sorted-`Vec` reference model (O(n) insert). For tests and
    /// differential harnesses only — never use it at scale.
    Reference,
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// ---------------------------------------------------- calendar internals

/// log2 of the level-0 bucket width: 256 ns buckets.
const GRANULE_SHIFT: u32 = 8;
/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Buckets per level (must match the `u64` occupancy bitmap).
const SLOTS: u64 = 1 << SLOT_BITS;
/// Wheel levels. Level `l` buckets are `1 << (GRANULE_SHIFT + 6l)` ns
/// wide, so four levels span `2^(8 + 24)` ns ≈ 4.3 s beyond the wheel
/// clock before the overflow heap takes over.
const LEVELS: usize = 4;
/// Null link in the node slab.
const NIL: u32 = u32::MAX;

/// Right-shift that maps a timestamp to level-`l` bucket units.
#[inline]
fn level_shift(l: usize) -> u32 {
    GRANULE_SHIFT + SLOT_BITS * l as u32
}

/// One slab-resident pending event.
struct Node<E> {
    at: u64,
    seq: u64,
    /// Next node in the same bucket (unordered within a bucket).
    next: u32,
    /// `None` only while the node sits on the free list.
    event: Option<E>,
}

/// Far-future entry: payload stays in the slab, the heap orders indices.
struct Overflow {
    at: u64,
    seq: u64,
    idx: u32,
}

impl PartialEq for Overflow {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Overflow {}
impl PartialOrd for Overflow {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Overflow {
    // Reversed for min-first pops.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Hierarchical calendar queue. See the module docs for the invariants;
/// in short: an event at absolute time `at` lives at the lowest level
/// `l` where `(at >> s_l) - (wnow >> s_l) < SLOTS` (slot
/// `(at >> s_l) & (SLOTS-1)`), or in the overflow heap when no level
/// fits. `wnow` is the wheel's placement clock: it trails the global
/// minimum pending time, only ever advances, and advancing it never
/// strands an event (placement windows only tighten as `wnow` grows).
struct CalendarQueue<E> {
    /// All pending events, plus a LIFO free list threaded through `next`.
    nodes: Vec<Node<E>>,
    free: u32,
    /// Nodes on the free list (so `pending = nodes.len() - free_len`).
    free_len: usize,
    /// Bucket list heads, `heads[level][slot]`.
    heads: [[u32; SLOTS as usize]; LEVELS],
    /// Per-level occupancy bitmaps (bit = slot has entries).
    occupied: [u64; LEVELS],
    /// Events resident in wheel buckets (excludes overflow).
    wheel_len: usize,
    /// Wheel placement clock, ns. Always <= every pending event's time.
    wnow: u64,
    /// Events beyond the wheel horizon, min-first by `(at, seq)`.
    overflow: BinaryHeap<Overflow>,
    /// Conservative lower bound on the time of every event NOT resident
    /// in level 0 (higher wheel levels and the overflow heap); `u64::MAX`
    /// when provably none exist. Staleness only ever makes it lower than
    /// the true minimum, never higher, so the pop fast path — deliver
    /// straight from level 0 while its minimum is *strictly* below this
    /// bound — cannot reorder events (equal-time FIFO ties fall through
    /// to the full scan). This is what keeps the calendar competitive
    /// with the binary heap at small pending counts, where the per-pop
    /// higher-level scans would otherwise dominate.
    hi_bound: u64,
}

impl<E> CalendarQueue<E> {
    fn with_capacity(capacity: usize) -> Self {
        CalendarQueue {
            nodes: Vec::with_capacity(capacity),
            free: NIL,
            free_len: 0,
            heads: [[NIL; SLOTS as usize]; LEVELS],
            occupied: [0; LEVELS],
            wheel_len: 0,
            wnow: 0,
            overflow: BinaryHeap::new(),
            hi_bound: u64::MAX,
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// The slab's capacity is the real bound on concurrently pending
    /// events without reallocation (freed nodes are reused first).
    fn capacity(&self) -> usize {
        self.nodes.capacity()
    }

    fn reserve(&mut self, additional: usize) {
        let target = self.len() + additional;
        if target > self.nodes.capacity() {
            // Vec::reserve takes a count beyond len().
            self.nodes.reserve(target - self.nodes.len());
        }
    }

    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.nodes[idx as usize];
            self.free = n.next;
            self.free_len -= 1;
            n.at = at;
            n.seq = seq;
            n.next = NIL;
            n.event = Some(event);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "calendar queue node limit exceeded");
            self.nodes.push(Node {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            idx
        }
    }

    fn release(&mut self, idx: u32) {
        let n = &mut self.nodes[idx as usize];
        debug_assert!(n.event.is_none(), "releasing a live node");
        n.next = self.free;
        self.free = idx;
        self.free_len += 1;
    }

    /// Lowest level/slot that can hold time `at` given the current
    /// wheel clock, or `None` when it only fits the overflow heap.
    #[inline]
    fn place(at: u64, wnow: u64) -> Option<(usize, usize)> {
        debug_assert!(at >= wnow);
        for l in 0..LEVELS {
            let s = level_shift(l);
            if (at >> s) - (wnow >> s) < SLOTS {
                return Some((l, ((at >> s) & (SLOTS - 1)) as usize));
            }
        }
        None
    }

    fn insert(&mut self, at: u64, seq: u64, event: E) {
        let idx = self.alloc(at, seq, event);
        self.link(idx);
    }

    /// Link an allocated node into its bucket (or the overflow heap).
    fn link(&mut self, idx: u32) {
        let (at, seq) = {
            let n = &self.nodes[idx as usize];
            (n.at, n.seq)
        };
        match Self::place(at, self.wnow) {
            Some((l, slot)) => {
                self.nodes[idx as usize].next = self.heads[l][slot];
                self.heads[l][slot] = idx;
                self.occupied[l] |= 1 << slot;
                self.wheel_len += 1;
                if l > 0 {
                    // The bucket's start time bounds every entry in it.
                    let start = (at >> level_shift(l)) << level_shift(l);
                    self.hi_bound = self.hi_bound.min(start);
                }
            }
            None => {
                self.hi_bound = self.hi_bound.min(at);
                self.overflow.push(Overflow { at, seq, idx });
            }
        }
    }

    /// First occupied bucket of level `l` in wrap order from the wheel
    /// cursor, with its absolute start time. Within a level, wrap order
    /// is exactly bucket-start-time order (each level holds at most one
    /// revolution), so this is the level's earliest bucket.
    fn first_bucket(&self, l: usize) -> Option<(usize, u64)> {
        let occ = self.occupied[l];
        if occ == 0 {
            return None;
        }
        let s = level_shift(l);
        let cur = self.wnow >> s;
        let cur_slot = (cur & (SLOTS - 1)) as u32;
        let off = occ.rotate_right(cur_slot).trailing_zeros() as u64;
        let slot = ((cur_slot as u64 + off) & (SLOTS - 1)) as usize;
        Some((slot, (cur + off) << s))
    }

    /// Exact `(at, seq)` minimum of level 0 (scan of its first bucket:
    /// same-granule events share a slot, so the first occupied bucket
    /// contains the level's minimum).
    fn level_min(&self, l: usize) -> Option<(u64, u64)> {
        let (slot, _) = self.first_bucket(l)?;
        let mut best: Option<(u64, u64)> = None;
        let mut idx = self.heads[l][slot];
        while idx != NIL {
            let n = &self.nodes[idx as usize];
            let key = (n.at, n.seq);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
            idx = n.next;
        }
        best
    }

    /// Exact minimum pending time, without mutating anything: the min
    /// over each level's earliest bucket and the overflow peek.
    fn peek_time(&self) -> Option<u64> {
        let mut best: Option<u64> = None;
        for l in 0..LEVELS {
            if let Some((at, _)) = self.level_min(l) {
                if best.is_none_or(|b| at < b) {
                    best = Some(at);
                }
            }
        }
        if let Some(o) = self.overflow.peek() {
            if best.is_none_or(|b| o.at < b) {
                best = Some(o.at);
            }
        }
        best
    }

    /// Empty a higher-level bucket into lower levels. `start` is the
    /// bucket's absolute start time; it never exceeds any pending event
    /// time (the caller picked the globally earliest bucket), so
    /// advancing `wnow` to it is safe, and after the advance every
    /// entry re-places at a level strictly below `l`.
    fn cascade(&mut self, l: usize, slot: usize, start: u64) {
        debug_assert!(l > 0);
        self.wnow = self.wnow.max(start);
        self.occupied[l] &= !(1 << slot);
        let mut idx = std::mem::replace(&mut self.heads[l][slot], NIL);
        while idx != NIL {
            let next = std::mem::replace(&mut self.nodes[idx as usize].next, NIL);
            self.wheel_len -= 1;
            if cfg!(debug_assertions) {
                let at = self.nodes[idx as usize].at;
                let (nl, _) = Self::place(at, self.wnow).expect("cascaded entry fits the wheel");
                debug_assert!(nl < l, "cascade failed to descend");
            }
            self.link(idx);
            idx = next;
        }
    }

    /// Unlink and return the level-0 minimum. Caller guarantees level 0
    /// is the global minimum's home (after cascades/migration).
    fn pop_level0(&mut self) -> (u64, u64, E) {
        let (slot, _) = self.first_bucket(0).expect("level 0 occupied");
        // Find the min entry, tracking the predecessor for the unlink.
        let mut best: Option<(u64, u64, u32, u32)> = None; // (at, seq, prev, idx)
        let mut prev = NIL;
        let mut idx = self.heads[0][slot];
        while idx != NIL {
            let n = &self.nodes[idx as usize];
            if best.is_none_or(|(a, s, _, _)| (n.at, n.seq) < (a, s)) {
                best = Some((n.at, n.seq, prev, idx));
            }
            prev = idx;
            idx = n.next;
        }
        let (at, seq, prev, idx) = best.expect("occupied bucket has entries");
        let next = self.nodes[idx as usize].next;
        if prev == NIL {
            self.heads[0][slot] = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if self.heads[0][slot] == NIL {
            self.occupied[0] &= !(1 << slot);
        }
        self.wheel_len -= 1;
        let event = self.nodes[idx as usize].event.take().expect("live node");
        self.release(idx);
        self.wnow = self.wnow.max(at);
        (at, seq, event)
    }

    /// Remove and return the global `(at, seq)` minimum.
    fn pop(&mut self) -> Option<(u64, u64, E)> {
        loop {
            // Fast path: while level 0's minimum is strictly below the
            // lower bound on everything else, it IS the global minimum —
            // no level scans, no cascades, no overflow consultation.
            if self.occupied[0] != 0 {
                if let Some((c0_at, _)) = self.level_min(0) {
                    if c0_at < self.hi_bound {
                        return Some(self.pop_level0());
                    }
                }
            }
            if self.len() == 0 {
                return None;
            }
            // Earliest bucket among levels >= 1 (by absolute start).
            let mut best_hi: Option<(u64, usize, usize)> = None;
            for l in 1..LEVELS {
                if let Some((slot, start)) = self.first_bucket(l) {
                    if best_hi.is_none_or(|(bs, _, _)| start < bs) {
                        best_hi = Some((start, l, slot));
                    }
                }
            }
            let c0 = self.level_min(0);
            let c0_at = c0.map_or(u64::MAX, |(a, _)| a);
            let ov_at = self.overflow.peek().map_or(u64::MAX, |o| o.at);
            // A higher-level bucket starting at or before both the
            // level-0 candidate and the overflow minimum may contain the
            // true minimum (or an equal-time, earlier-seq entry): spill
            // it down and re-evaluate. Each cascade strictly lowers its
            // entries' levels, so this terminates.
            if let Some((start, l, slot)) = best_hi {
                if start <= c0_at && start <= ov_at {
                    self.cascade(l, slot, start);
                    continue;
                }
            }
            // Overflow migration: when the overflow minimum beats (or
            // seq-ties below) everything in the wheel, advance the wheel
            // clock to it and pull every now-placeable entry in.
            if let Some(o) = self.overflow.peek() {
                let beats_c0 = c0.is_none_or(|(a, s)| (o.at, o.seq) < (a, s));
                if beats_c0 {
                    debug_assert!(best_hi.is_none_or(|(start, _, _)| o.at < start));
                    self.wnow = self.wnow.max(o.at);
                    while let Some(o) = self.overflow.peek() {
                        if Self::place(o.at, self.wnow).is_none() {
                            break;
                        }
                        let o = self.overflow.pop().expect("peeked entry");
                        self.link(o.idx);
                    }
                    continue;
                }
            }
            // Level 0 now holds the global minimum. The scan just proved
            // nothing above level 0 starts before `best_hi`/`ov_at`, so
            // refresh the fast-path bound with the tighter value.
            self.hi_bound = ov_at.min(best_hi.map_or(u64::MAX, |(start, _, _)| start));
            return Some(self.pop_level0());
        }
    }
}

// ----------------------------------------------------------- EventQueue

enum Backend<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    // Boxed: the wheel's inline bucket-head table dwarfs the other
    // variants, and `EventQueue` owners should not pay for it inline.
    Calendar(Box<CalendarQueue<E>>),
    Reference(ReferenceQueue<E>),
}

/// A deterministic discrete-event queue with an embedded simulation clock.
///
/// Popping an event advances the clock to that event's timestamp. Events
/// scheduled "in the past" (before the current clock) are a logic error and
/// panic in debug builds; in release they are delivered at the current time.
///
/// The backing store is selectable (see [`QueueBackend`]); every backend
/// delivers the exact same `(time, seq)` order, so the choice is purely
/// a performance knob.
pub struct EventQueue<E> {
    backend: Backend<E>,
    which: QueueBackend,
    seq: u64,
    now: SimTime,
    processed: u64,
    /// Floor below which `capacity()` never reports, so a caller's
    /// `with_capacity`/`reserve` sizing survives backend regrowth
    /// patterns (the capacity consistency contract).
    cap_floor: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero, on the default
    /// (calendar) backend.
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Create an empty queue on an explicit backend.
    pub fn with_backend(which: QueueBackend) -> Self {
        Self::with_capacity_and_backend(0, which)
    }

    /// Create an empty queue pre-sized for `capacity` pending events,
    /// avoiding regrowth in long runs whose in-flight event count is
    /// predictable. Scheduling semantics are identical to [`new`].
    ///
    /// [`new`]: EventQueue::new
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_backend(capacity, QueueBackend::default())
    }

    /// Pre-sized queue on an explicit backend. `capacity() >= capacity`
    /// holds from here on, whatever the backend does internally.
    pub fn with_capacity_and_backend(capacity: usize, which: QueueBackend) -> Self {
        let backend = match which {
            QueueBackend::Heap => Backend::Heap(BinaryHeap::with_capacity(capacity)),
            QueueBackend::Calendar => {
                Backend::Calendar(Box::new(CalendarQueue::with_capacity(capacity)))
            }
            QueueBackend::Reference => Backend::Reference(ReferenceQueue::with_capacity(capacity)),
        };
        EventQueue {
            backend,
            which,
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
            cap_floor: capacity,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        self.which
    }

    /// Reserve room for at least `additional` more pending events:
    /// afterwards `capacity() >= pending() + additional`.
    pub fn reserve(&mut self, additional: usize) {
        let target = self.pending() + additional;
        match &mut self.backend {
            Backend::Heap(h) => h.reserve(additional),
            Backend::Calendar(c) => c.reserve(additional),
            Backend::Reference(r) => r.reserve(additional),
        }
        self.cap_floor = self.cap_floor.max(target);
    }

    /// Number of pending events the queue can hold without reallocating.
    /// Never reports below any floor previously requested through
    /// [`with_capacity`](EventQueue::with_capacity) or
    /// [`reserve`](EventQueue::reserve), and never decreases.
    pub fn capacity(&self) -> usize {
        let raw = match &self.backend {
            Backend::Heap(h) => h.capacity(),
            Backend::Calendar(c) => c.capacity(),
            Backend::Reference(r) => r.capacity(),
        };
        raw.max(self.cap_floor)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len(),
            Backend::Reference(r) => r.len(),
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Scheduled { at, seq, event }),
            Backend::Calendar(c) => c.insert(at.as_nanos(), seq, event),
            Backend::Reference(r) => r.insert(at.as_nanos(), seq, event),
        }
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|s| s.at),
            Backend::Calendar(c) => c.peek_time().map(SimTime),
            Backend::Reference(r) => r.peek().map(|(at, _)| SimTime(at)),
        }
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|s| (s.at, s.event))?,
            Backend::Calendar(c) => c.pop().map(|(at, _, e)| (SimTime(at), e))?,
            Backend::Reference(r) => r.pop().map(|(at, _, e)| (SimTime(at), e))?,
        };
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        Some((at, event))
    }

    /// Deliver the next event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned (the event stays queued).
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BACKENDS: [QueueBackend; 3] = [
        QueueBackend::Calendar,
        QueueBackend::Heap,
        QueueBackend::Reference,
    ];

    #[test]
    fn events_pop_in_time_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_millis(30), "c");
            q.schedule(SimTime::from_millis(10), "a");
            q.schedule(SimTime::from_millis(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{b:?}");
            assert_eq!(q.now(), SimTime::from_millis(30));
            assert_eq!(q.processed(), 3);
        }
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            let t = SimTime::from_secs(1);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{b:?}");
        }
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(5), "first");
            q.pop();
            q.schedule_after(SimDuration::from_secs(1), "second");
            let (t, e) = q.pop().unwrap();
            assert_eq!(e, "second");
            assert_eq!(t, SimTime::from_secs(6), "{b:?}");
        }
    }

    #[test]
    fn pop_until_respects_deadline() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(2), "late");
            assert!(q.pop_until(SimTime::from_secs(1)).is_none());
            assert_eq!(q.now(), SimTime::from_secs(1));
            assert_eq!(q.pending(), 1);
            let (t, e) = q.pop_until(SimTime::from_secs(3)).unwrap();
            assert_eq!((t, e), (SimTime::from_secs(2), "late"), "{b:?}");
        }
    }

    #[test]
    fn pop_until_with_empty_queue_advances_clock() {
        for b in BACKENDS {
            let mut q: EventQueue<()> = EventQueue::with_backend(b);
            assert!(q.pop_until(SimTime::from_secs(7)).is_none());
            assert_eq!(q.now(), SimTime::from_secs(7), "{b:?}");
        }
    }

    #[test]
    fn with_capacity_preallocates_without_changing_semantics() {
        for b in BACKENDS {
            let mut pre = EventQueue::with_capacity_and_backend(512, b);
            assert!(pre.capacity() >= 512);
            let mut plain = EventQueue::with_backend(b);
            // Interleave same-time ties and distinct times; both queues
            // must agree on pending counts and pop order exactly.
            for i in 0..300u64 {
                let at = SimTime::from_millis(i % 7);
                pre.schedule(at, i);
                plain.schedule(at, i);
            }
            assert_eq!(pre.pending(), plain.pending());
            // No regrowth happened for the pre-sized queue.
            assert!(pre.capacity() >= 512);
            let a: Vec<_> = std::iter::from_fn(|| pre.pop()).collect();
            let b2: Vec<_> = std::iter::from_fn(|| plain.pop()).collect();
            assert_eq!(a, b2, "{b:?}");
            assert_eq!(pre.processed(), 300);
        }
    }

    #[test]
    fn reserve_grows_capacity_and_keeps_order() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            q.schedule(SimTime::from_secs(2), "b");
            q.schedule(SimTime::from_secs(1), "a");
            q.reserve(1000);
            assert!(q.capacity() >= 1002, "{b:?}");
            assert_eq!(q.pending(), 2);
            q.schedule(SimTime::from_secs(3), "c");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{b:?}");
        }
    }

    #[test]
    fn capacity_floor_survives_regrowth_and_drain() {
        // The capacity consistency contract: neither a growth cycle well
        // past the initial size nor a full drain may ever drop
        // `capacity()` below a previously requested floor (this was
        // silently violated by pre-sized heap queues once regrowth took
        // over sizing).
        for b in BACKENDS {
            let mut q = EventQueue::with_capacity_and_backend(256, b);
            let initial = q.capacity();
            assert!(initial >= 256, "{b:?}");
            let mut seen_min = usize::MAX;
            for round in 0..3u64 {
                for i in 0..2000u64 {
                    q.schedule(SimTime(round * 10_000 + i * 3), i);
                }
                while q.pop().is_some() {}
                seen_min = seen_min.min(q.capacity());
            }
            assert!(
                seen_min >= initial,
                "{b:?}: capacity fell from {initial} to {seen_min}"
            );
            // reserve() floors capacity at pending + additional.
            for i in 0..10u64 {
                q.schedule(SimTime(1_000_000 + i), i);
            }
            q.reserve(5000);
            assert!(q.capacity() >= 5010, "{b:?}");
            while q.pop().is_some() {}
            assert!(q.capacity() >= 5010, "{b:?}: drain dropped the floor");
        }
    }

    /// Drive two backends through the same schedule and require an
    /// identical pop sequence (times, payloads, clock, counters).
    fn assert_backends_agree(schedule: &[(u64, &'static str)]) {
        let mut queues: Vec<EventQueue<&'static str>> = BACKENDS
            .iter()
            .map(|&b| EventQueue::with_backend(b))
            .collect();
        for &(at, ev) in schedule {
            for q in &mut queues {
                q.schedule(SimTime(at), ev);
            }
        }
        let outs: Vec<Vec<(SimTime, &'static str)>> = queues
            .iter_mut()
            .map(|q| std::iter::from_fn(|| q.pop()).collect())
            .collect();
        assert_eq!(outs[0], outs[1], "calendar vs heap");
        assert_eq!(outs[0], outs[2], "calendar vs reference");
    }

    #[test]
    fn far_future_events_overflow_and_return_exactly() {
        // Mix of wheel-resident and beyond-horizon times (> ~4.3 s),
        // including ties across the overflow boundary.
        assert_backends_agree(&[
            (10, "a"),
            (100_000_000_000, "far-b"),
            (5, "c"),
            (100_000_000_000, "far-d"),
            (6_000_000_000, "mid-e"),
            (0, "zero-f"),
            (u64::MAX, "max-g"),
            (u64::MAX, "max-h"),
            (u64::MAX - 1, "almost-i"),
        ]);
    }

    #[test]
    fn dense_microsecond_schedules_agree() {
        let mut sched = Vec::new();
        for i in 0..500u64 {
            // Deterministic pseudo-scatter over a ~40 us horizon.
            sched.push((i.wrapping_mul(2_654_435_761) % 40_000, "x"));
        }
        assert_backends_agree(&sched);
    }

    #[test]
    fn interleaved_push_pop_matches_heap() {
        // Pop/push interleaving exercises cascades and wheel-clock
        // advances mid-stream, not just a bulk load.
        let mut cal: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Calendar);
        let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::Heap);
        let mut x = 88172645463325252u64;
        let mut step = move || {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..5000u64 {
            let r = step();
            if r % 3 == 0 && cal.pending() > 0 {
                assert_eq!(cal.pop(), heap.pop(), "diverged at step {i}");
            } else {
                // Mostly near-future deltas, occasionally far-future.
                let delta = if r % 97 == 0 {
                    5_000_000_000 + r % 30_000_000_000
                } else {
                    r % 3_000_000
                };
                let at = cal.now() + SimDuration::from_nanos(delta);
                cal.schedule(at, i);
                heap.schedule(at, i);
            }
        }
        while let Some(got) = cal.pop() {
            assert_eq!(Some(got), heap.pop());
        }
        assert!(heap.pop().is_none());
        assert_eq!(cal.processed(), heap.processed());
    }

    #[test]
    fn peek_time_is_exact_on_all_backends() {
        for b in BACKENDS {
            let mut q = EventQueue::with_backend(b);
            for i in 0..200u64 {
                let at = (i.wrapping_mul(0x9E3779B97F4A7C15)) % 10_000_000_000;
                q.schedule(SimTime(at), i);
            }
            while let Some(t) = q.peek_time() {
                let (got, _) = q.pop().expect("peeked event pops");
                assert_eq!(got, t, "{b:?}");
            }
        }
    }

    #[test]
    fn default_backend_is_calendar() {
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::Calendar);
        let q: EventQueue<()> = EventQueue::with_capacity(10);
        assert_eq!(q.backend(), QueueBackend::Calendar);
    }
}
