//! The discrete-event queue.
//!
//! [`EventQueue`] is a priority queue of `(time, event)` pairs with a
//! monotonically advancing clock. Ties are broken by insertion order, so a
//! run is fully deterministic regardless of event payloads.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue with an embedded simulation clock.
///
/// Popping an event advances the clock to that event's timestamp. Events
/// scheduled "in the past" (before the current clock) are a logic error and
/// panic in debug builds; in release they are delivered at the current time.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Create an empty queue pre-sized for `capacity` pending events,
    /// avoiding heap regrowth in long runs whose in-flight event count
    /// is predictable. Scheduling semantics are identical to [`new`].
    ///
    /// [`new`]: EventQueue::new
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Reserve room for at least `additional` more pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Deliver the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now);
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Deliver the next event only if it fires at or before `deadline`.
    ///
    /// If the next event is later than `deadline`, the clock advances to
    /// `deadline` and `None` is returned (the event stays queued).
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => {
                if self.now < deadline {
                    self.now = deadline;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_millis(30));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(1), "second");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "second");
        assert_eq!(t, SimTime::from_secs(6));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "late");
        assert!(q.pop_until(SimTime::from_secs(1)).is_none());
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.pending(), 1);
        let (t, e) = q.pop_until(SimTime::from_secs(3)).unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), "late"));
    }

    #[test]
    fn pop_until_with_empty_queue_advances_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop_until(SimTime::from_secs(7)).is_none());
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    fn with_capacity_preallocates_without_changing_semantics() {
        let mut pre = EventQueue::with_capacity(512);
        assert!(pre.capacity() >= 512);
        let mut plain = EventQueue::new();
        // Interleave same-time ties and distinct times; both queues
        // must agree on pending counts and pop order exactly.
        for i in 0..300u64 {
            let at = SimTime::from_millis(i % 7);
            pre.schedule(at, i);
            plain.schedule(at, i);
        }
        assert_eq!(pre.pending(), plain.pending());
        // No regrowth happened for the pre-sized queue.
        assert!(pre.capacity() >= 512);
        let a: Vec<_> = std::iter::from_fn(|| pre.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| plain.pop()).collect();
        assert_eq!(a, b);
        assert_eq!(pre.processed(), 300);
    }

    #[test]
    fn reserve_grows_capacity_and_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "b");
        q.schedule(SimTime::from_secs(1), "a");
        q.reserve(1000);
        assert!(q.capacity() >= 1002);
        assert_eq!(q.pending(), 2);
        q.schedule(SimTime::from_secs(3), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }
}
