//! Conservative epoch scheduling for parallel simulation.
//!
//! A sharded simulation advances all shards through a sequence of
//! *epochs*: half-open-left windows `(b, b']` of simulated time. Within
//! an epoch every shard processes only its own events; anything that
//! crosses a shard boundary (an RPC, a reply) is buffered and exchanged
//! at the *barrier* between epochs. This is safe — no shard can ever see
//! an event "from the past" — as long as every epoch is no longer than
//! the *lookahead*: the minimum latency any cross-shard interaction
//! needs before it can affect another shard. For the PFS simulator the
//! lookahead is the minimum network latency: a message sent at time `t`
//! cannot be delivered before `t + latency`, so a send performed inside
//! `(b, b']` always lands strictly after `b'` (epoch length ≤ latency).
//!
//! [`EpochSchedule`] produces the boundary sequence. Besides the regular
//! lookahead grid it can pin extra boundaries at a recurring *tick*
//! (e.g. a controller interval): placing `j·C` and `j·C + offset` on the
//! boundary set guarantees the tick event is processed in its own
//! mini-epoch, after every delivery from before the tick has been
//! materialised and before any delivery following it is routed — which
//! is what keeps globally ordered control decisions identical between
//! sequential and sharded execution.
//!
//! [`Mailbox`] is the deterministic cross-shard delivery pool: entries
//! are stamped with an insertion sequence number, and drain strictly in
//! `(time, stamp)` order, so the merge order at a barrier depends only
//! on the (canonical) order in which the coordinator pushed them —
//! never on thread scheduling.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Generator of conservative epoch boundaries.
///
/// Boundaries are the union of the regular grid `{k·lookahead}` and, if
/// a tick is configured, the points `{j·interval}` and
/// `{j·interval + offset}`. Consecutive boundaries are therefore never
/// more than `lookahead` apart, which is the conservative-synchronisation
/// safety condition.
#[derive(Clone, Copy, Debug)]
pub struct EpochSchedule {
    lookahead: SimDuration,
    tick: Option<(SimDuration, SimDuration)>,
}

impl EpochSchedule {
    /// Schedule with the plain lookahead grid. `lookahead` must be
    /// non-zero.
    pub fn new(lookahead: SimDuration) -> Self {
        assert!(lookahead > SimDuration::ZERO, "lookahead must be non-zero");
        EpochSchedule {
            lookahead,
            tick: None,
        }
    }

    /// Add recurring tick boundaries at `j·interval` and
    /// `j·interval + offset` for `j ≥ 1`. `offset` must be smaller than
    /// `interval`.
    pub fn with_tick(mut self, interval: SimDuration, offset: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "tick interval must be non-zero"
        );
        assert!(offset < interval, "tick offset must precede the next tick");
        self.tick = Some((interval, offset));
        self
    }

    /// The configured lookahead (maximum epoch length).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The first boundary strictly after `b`. Never more than
    /// `lookahead` past `b`.
    pub fn next_after(&self, b: SimTime) -> SimTime {
        let l = self.lookahead.as_nanos();
        let mut next = (b.as_nanos() / l + 1) * l;
        if let Some((c, o)) = self.tick {
            let (c, o) = (c.as_nanos(), o.as_nanos());
            let j = b.as_nanos() / c;
            for cand in [j * c, j * c + o, (j + 1) * c, (j + 1) * c + o] {
                if cand > b.as_nanos() && cand < next {
                    next = cand;
                }
            }
        }
        SimTime(next)
    }

    /// The last boundary strictly *before* `t` (zero if there is none):
    /// the base from which the epoch containing `t` starts. Used to
    /// fast-forward over stretches with no pending work.
    pub fn last_before(&self, t: SimTime) -> SimTime {
        if t == SimTime::ZERO {
            return SimTime::ZERO;
        }
        let x = t.as_nanos() - 1;
        let l = self.lookahead.as_nanos();
        let mut last = (x / l) * l;
        if let Some((c, o)) = self.tick {
            let (c, o) = (c.as_nanos(), o.as_nanos());
            let j = x / c;
            for cand in [j * c, j * c + o] {
                if cand <= x && cand > last {
                    last = cand;
                }
            }
        }
        SimTime(last)
    }
}

#[derive(Debug)]
struct Stamped<T> {
    at: SimTime,
    stamp: u64,
    item: T,
}

impl<T> PartialEq for Stamped<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.stamp == other.stamp
    }
}
impl<T> Eq for Stamped<T> {}
impl<T> PartialOrd for Stamped<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Stamped<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.stamp).cmp(&(other.at, other.stamp))
    }
}

/// Deterministic pending-delivery pool for cross-shard traffic.
///
/// Each [`push`](Mailbox::push) stamps the entry with a monotonically
/// increasing sequence number; [`pop_until`](Mailbox::pop_until) drains
/// entries in strict `(time, stamp)` order. Two mailboxes fed the same
/// `(time, item)` sequence drain identically, regardless of how the
/// producing shards were scheduled onto threads — the coordinator pushes
/// in canonical order, so the drain order is canonical too.
#[derive(Debug)]
pub struct Mailbox<T> {
    heap: BinaryHeap<Reverse<Stamped<T>>>,
    next_stamp: u64,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Mailbox {
            heap: BinaryHeap::new(),
            next_stamp: 0,
        }
    }
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// Enqueue `item` for delivery at `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.heap.push(Reverse(Stamped { at, stamp, item }));
    }

    /// Timestamp of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Pop the earliest entry if it is due at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        if self.peek_time()? > deadline {
            return None;
        }
        self.heap.pop().map(|Reverse(s)| (s.at, s.item))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_never_exceed_lookahead() {
        let s = EpochSchedule::new(SimDuration::from_micros(100))
            .with_tick(SimDuration::from_millis(1), SimDuration::from_nanos(1));
        let mut b = SimTime::ZERO;
        for _ in 0..10_000 {
            let n = s.next_after(b);
            assert!(n > b);
            assert!(n - b <= SimDuration::from_micros(100));
            b = n;
        }
    }

    #[test]
    fn tick_points_are_boundaries() {
        let s = EpochSchedule::new(SimDuration::from_micros(100))
            .with_tick(SimDuration::from_millis(1), SimDuration::from_nanos(1));
        // Walking from just before a tick must land exactly on j·C, then
        // on j·C + 1ns.
        let close = SimTime(1_000_000);
        let before = SimTime(close.as_nanos() - 50);
        assert_eq!(s.next_after(before), close);
        assert_eq!(s.next_after(close), SimTime(close.as_nanos() + 1));
    }

    #[test]
    fn last_before_is_inverse_of_next_after() {
        let s = EpochSchedule::new(SimDuration::from_micros(100))
            .with_tick(SimDuration::from_millis(1), SimDuration::from_nanos(1));
        for t in [
            1u64, 99_999, 100_000, 100_001, 1_000_000, 1_000_001, 1_000_002,
        ] {
            let t = SimTime(t);
            let b = s.last_before(t);
            assert!(b < t, "base {b:?} not before {t:?}");
            assert!(s.next_after(b) >= t, "epoch ({b:?}, ..] skips {t:?}");
        }
    }

    #[test]
    fn mailbox_drains_in_time_then_stamp_order() {
        let mut m = Mailbox::new();
        m.push(SimTime(5), "a");
        m.push(SimTime(3), "b");
        m.push(SimTime(5), "c");
        m.push(SimTime(1), "d");
        let mut out = Vec::new();
        while let Some((at, item)) = m.pop_until(SimTime(5)) {
            out.push((at.as_nanos(), item));
        }
        assert_eq!(out, vec![(1, "d"), (3, "b"), (5, "a"), (5, "c")]);
        assert!(m.is_empty());
    }

    #[test]
    fn mailbox_respects_deadline() {
        let mut m = Mailbox::new();
        m.push(SimTime(10), 1u32);
        m.push(SimTime(20), 2u32);
        assert_eq!(m.pop_until(SimTime(15)), Some((SimTime(10), 1)));
        assert_eq!(m.pop_until(SimTime(15)), None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.peek_time(), Some(SimTime(20)));
    }
}
