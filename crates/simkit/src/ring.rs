//! Bounded ring buffer with eviction accounting.
//!
//! [`RingBuffer`] is the storage primitive behind the bounded trace
//! stores: a FIFO that holds at most `capacity` items and evicts from the
//! front when full, while keeping an exact count of everything it has
//! ever dropped. That accounting is what lets a bounded store report how
//! much history it *would* have held, so differential tests and benches
//! can compare a ring-backed run against an unbounded reference without
//! guessing.
//!
//! Degenerate capacities are well defined: a capacity-0 ring immediately
//! evicts every push (it still counts them), and a capacity-1 ring holds
//! only the most recent item.

use std::collections::VecDeque;

/// A FIFO buffer holding at most `capacity` items, evicting the oldest
/// on overflow and counting every eviction.
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    evicted: u64,
}

impl<T> RingBuffer<T> {
    /// Create an empty ring holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            // Degenerate capacities must not pre-reserve huge blocks.
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            evicted: 0,
        }
    }

    /// Maximum number of items held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Items evicted (dropped from the front) since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Items ever pushed: still held plus evicted.
    pub fn pushed(&self) -> u64 {
        self.evicted + self.buf.len() as u64
    }

    /// Append `item`, returning the evicted item if the ring was full.
    ///
    /// With `capacity == 0` the pushed item itself is returned (and
    /// counted as evicted) without ever being stored.
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.capacity == 0 {
            self.evicted += 1;
            return Some(item);
        }
        let dropped = if self.buf.len() == self.capacity {
            self.evicted += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        dropped
    }

    /// Oldest held item.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Newest held item.
    pub fn back(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Mutable access to the newest held item (used by run-length
    /// stores to extend the live tail in place).
    pub fn back_mut(&mut self) -> Option<&mut T> {
        self.buf.back_mut()
    }

    /// Item at position `i` from the front (0 = oldest).
    pub fn get(&self, i: usize) -> Option<&T> {
        self.buf.get(i)
    }

    /// Iterate held items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_up_to_capacity() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            assert_eq!(r.push(i), None);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn evicts_oldest_first() {
        let mut r = RingBuffer::new(2);
        r.push(10);
        r.push(11);
        assert_eq!(r.push(12), Some(10));
        assert_eq!(r.push(13), Some(11));
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![12, 13]);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.pushed(), 4);
        assert_eq!(r.front(), Some(&12));
        assert_eq!(r.back(), Some(&13));
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let mut r = RingBuffer::new(0);
        for i in 0..5 {
            assert_eq!(r.push(i), Some(i));
        }
        assert!(r.is_empty());
        assert_eq!(r.evicted(), 5);
        assert_eq!(r.pushed(), 5);
    }

    #[test]
    fn capacity_one_keeps_newest() {
        let mut r = RingBuffer::new(1);
        assert_eq!(r.push('a'), None);
        assert_eq!(r.push('b'), Some('a'));
        assert_eq!(r.back(), Some(&'b'));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn back_mut_edits_tail() {
        let mut r = RingBuffer::new(4);
        r.push(1);
        r.push(2);
        *r.back_mut().unwrap() = 9;
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 9]);
        assert_eq!(r.get(1), Some(&9));
    }
}
