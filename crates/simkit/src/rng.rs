//! Seeded randomness for reproducible simulations.
//!
//! [`SimRng`] wraps a fast non-cryptographic PRNG and adds the sampling
//! helpers the simulator and workload generators need. Independent
//! substreams are derived from a parent seed with [`SimRng::substream`], so
//! adding randomness in one component never perturbs another.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// SplitMix64 step — used to derive well-separated substream seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded PRNG with simulation-oriented sampling helpers.
#[derive(Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for the component labelled `tag`.
    ///
    /// The derivation depends only on `(seed, tag)`, never on how much this
    /// generator has already been used.
    pub fn substream(&self, tag: u64) -> SimRng {
        let mut state = self.seed ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = splitmix64(&mut state);
        SimRng::new(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty collection");
        self.inner.gen_range(0..n)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Exponential variate with the given mean (> 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Standard normal variate (Box-Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Normal variate truncated below at `floor`.
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Log-normal variate parameterised by the mean and std-dev of the
    /// underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential *duration* with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs_f64()))
    }

    /// Duration jittered uniformly within `±fraction` of `base`.
    pub fn jittered(&mut self, base: SimDuration, fraction: f64) -> SimDuration {
        let f = self.range_f64(1.0 - fraction, 1.0 + fraction);
        SimDuration::from_secs_f64(base.as_secs_f64() * f)
    }

    /// Pick a uniformly random element of `items`.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimRng(seed={})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn substreams_are_independent_of_usage() {
        let mut a = SimRng::new(7);
        let b = SimRng::new(7);
        // Consuming from `a` must not change the substream it derives.
        for _ in 0..10 {
            a.unit();
        }
        let mut s1 = a.substream(3);
        let mut s2 = b.substream(3);
        for _ in 0..50 {
            assert_eq!(s1.unit().to_bits(), s2.unit().to_bits());
        }
    }

    /// Regression guard for the PR-1 reseeding incident: the fault
    /// substream (tag 0xFA17) and the main cluster substream (0xC10D)
    /// derive from the parent seed alone, so *drawing* from the fault
    /// stream — however much, whatever mix of samplers — must never
    /// perturb the main stream's value sequence.
    #[test]
    fn fault_substream_draws_never_perturb_main_stream() {
        let parent = SimRng::new(0xDEAD_BEEF);
        // Baseline: the main stream's sequence with the fault stream
        // never touched.
        let mut main_untouched = parent.substream(0xC10D);
        let baseline: Vec<u64> = (0..256).map(|_| main_untouched.unit().to_bits()).collect();

        // Interleave heavy fault-stream consumption with main draws.
        let mut fault = parent.substream(0xFA17);
        let mut main = parent.substream(0xC10D);
        let mut got = Vec::with_capacity(256);
        for i in 0..256usize {
            // A realistic mix of the samplers fault injection uses.
            match i % 5 {
                0 => {
                    fault.chance(0.3);
                }
                1 => {
                    fault.exponential(2.0);
                }
                2 => {
                    fault.range_u64(0, 1000);
                }
                3 => {
                    fault.normal(1.0, 0.25);
                }
                _ => {
                    fault.exp_duration(SimDuration::from_millis(5));
                }
            }
            got.push(main.unit().to_bits());
        }
        assert_eq!(got, baseline, "fault substream draws leaked into main");
    }

    /// Re-deriving the fault substream mid-run restarts its sequence
    /// from the same point, and deriving it repeatedly leaves the main
    /// stream bit-identical — substream derivation itself consumes no
    /// parent state.
    #[test]
    fn substream_derivation_is_pure() {
        let parent = SimRng::new(1234);
        let mut a = parent.substream(0xFA17);
        let first: Vec<u64> = (0..64).map(|_| a.unit().to_bits()).collect();
        // Derive again (simulating a component rebuild): same sequence.
        let mut b = parent.substream(0xFA17);
        let second: Vec<u64> = (0..64).map(|_| b.unit().to_bits()).collect();
        assert_eq!(first, second);
        // Deriving many substreams never advances the parent.
        let mut p1 = parent.clone();
        let p2 = parent.clone();
        for tag in 0..100 {
            let _ = p2.substream(tag);
        }
        let mut p2 = p2;
        for _ in 0..64 {
            assert_eq!(p1.unit().to_bits(), p2.unit().to_bits());
        }
    }

    #[test]
    fn different_tags_differ() {
        let r = SimRng::new(9);
        let mut s1 = r.substream(1);
        let mut s2 = r.substream(2);
        let same = (0..32).filter(|_| s1.unit() == s2.unit()).count();
        assert!(same < 4, "substreams look correlated");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::new(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(4);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn jittered_stays_in_band() {
        let mut r = SimRng::new(5);
        let base = SimDuration::from_millis(100);
        for _ in 0..1000 {
            let d = r.jittered(base, 0.2).as_secs_f64();
            assert!((0.08..=0.12).contains(&d), "{d}");
        }
    }
}
