//! Simulated time.
//!
//! All simulation time is integer nanoseconds so that event ordering is
//! exact and runs are bit-reproducible. [`SimTime`] is an absolute instant
//! on the simulation clock (starting at zero); [`SimDuration`] is a span
//! between instants. Both are thin wrappers over `u64`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Nanoseconds in one microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; useful as an "infinite" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Instant `ms` milliseconds after the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Duration since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// `ms` whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// `us` whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Fractional seconds, rounding toward zero at nanosecond resolution.
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * NANOS_PER_SEC as f64) as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= NANOS_PER_MILLI {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_nanos(), 3_250 * NANOS_PER_MILLI);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_nanos(42).to_string(), "42ns");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(999) < SimTime::from_secs(1));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
