//! # qi-simkit
//!
//! Foundation crate for the Quanterference reproduction: a deterministic
//! discrete-event simulation core plus the numeric utilities shared by the
//! PFS simulator, the monitors, and the experiment harnesses.
//!
//! - [`error`] — the workspace-wide [`QiError`] type.
//! - [`time`] — integer-nanosecond [`SimTime`]/[`SimDuration`].
//! - [`event`] — the deterministic [`EventQueue`] with selectable
//!   calendar/heap backends ([`QueueBackend`]).
//! - [`epoch`] — conservative epoch boundaries and deterministic
//!   cross-shard mailboxes for parallel simulation.
//! - [`reference`] — the naive sorted-`Vec` queue double backing the
//!   differential tests.
//! - [`rng`] — seeded [`SimRng`] with substream derivation.
//! - [`ring`] — bounded [`RingBuffer`] with eviction accounting.
//! - [`stats`] — Welford accumulators, percentiles, histograms, smoothing.
//! - [`table`] — ASCII/CSV table output for experiment results.
//! - [`ratelimit`] — a token bucket over simulated time.
//!
//! Determinism contract: given the same seed and configuration, every
//! simulation built on this crate produces bit-identical traces, because
//! (a) time is integral, (b) event ties break by insertion order, and
//! (c) all randomness flows from [`SimRng`] substreams.

pub mod epoch;
pub mod error;
pub mod event;
pub mod ratelimit;
pub mod reference;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod table;
pub mod time;

pub use epoch::{EpochSchedule, Mailbox};
pub use error::QiError;
pub use event::{EventQueue, QueueBackend};
pub use ratelimit::TokenBucket;
pub use ring::RingBuffer;
pub use rng::SimRng;
pub use stats::{moving_average, percentile, Histogram, OnlineStats};
pub use table::{fmt_bytes, fmt_f64, AsciiTable};
pub use time::{SimDuration, SimTime};
