//! The workspace-wide error type.
//!
//! Every public entry point that can fail — cluster construction,
//! scenario execution, dataset generation, the training pipeline, the
//! monitors — returns `Result<_, QiError>` instead of panicking, so
//! callers embedding the framework can recover, report, or retry.
//! Variants are grouped by the layer that raises them; [`QiError::Monitor`]
//! wraps lower-level parse errors and surfaces them through
//! [`std::error::Error::source`].

use std::error::Error;
use std::fmt;

/// Unified error for the Quanterference workspace.
#[derive(Debug)]
pub enum QiError {
    /// Invalid cluster/builder configuration (bad node counts, zero
    /// devices, malformed knobs).
    Config(String),
    /// A fault plan failed validation or cannot apply to the cluster it
    /// was given (device out of range, overlapping windows, bad
    /// probability).
    FaultPlan(String),
    /// A run ended without the data the caller needs (an application
    /// hit its deadline, a required completion is missing).
    Incomplete(String),
    /// A data-path API was handed a block of the wrong shape.
    Shape {
        /// What was being shaped (e.g. "feature block floats").
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        got: usize,
    },
    /// Dataset generation or the train/evaluate pipeline failed.
    Pipeline(String),
    /// The online serving layer rejected a request or a registry
    /// operation (model shape mismatch, unknown version, bad engine
    /// configuration, unknown tenant).
    Serve(String),
    /// The mitigation control plane rejected a configuration or a
    /// directive (control loop built without a policy, a rate limit
    /// that is not finite and positive, an actuator target outside the
    /// cluster, a hysteresis setting that can never engage).
    Control(String),
    /// A monitor-layer failure, wrapping the underlying error.
    Monitor {
        /// What the monitor was doing.
        context: String,
        /// The lower-level cause.
        source: Box<dyn Error + Send + Sync>,
    },
    /// A trained model's feature schema does not match the feature
    /// pipeline it is being bound to (different window length, ablated
    /// blocks, different imputation policy). Raised before any
    /// inference runs — a model trained under one schema refuses to
    /// serve vectors produced under another.
    SchemaMismatch {
        /// What was being bound (e.g. "loading model version 2").
        context: String,
        /// The schema the pipeline/registry expects.
        expected: String,
        /// The schema the model carries.
        got: String,
    },
}

impl fmt::Display for QiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QiError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            QiError::FaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            QiError::Incomplete(msg) => write!(f, "run incomplete: {msg}"),
            QiError::Shape {
                what,
                expected,
                got,
            } => write!(
                f,
                "shape mismatch in {what}: expected {expected}, got {got}"
            ),
            QiError::Pipeline(msg) => write!(f, "pipeline failure: {msg}"),
            QiError::Serve(msg) => write!(f, "serving failure: {msg}"),
            QiError::Control(msg) => write!(f, "control failure: {msg}"),
            QiError::Monitor { context, source } => {
                write!(f, "monitor failure while {context}: {source}")
            }
            QiError::SchemaMismatch {
                context,
                expected,
                got,
            } => write!(
                f,
                "feature schema mismatch while {context}: expected [{expected}], got [{got}]"
            ),
        }
    }
}

impl Error for QiError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QiError::Monitor { source, .. } => Some(source.as_ref() as &(dyn Error + 'static)),
            _ => None,
        }
    }
}

impl QiError {
    /// Wrap a lower-level error as a monitor failure.
    pub fn monitor(context: impl Into<String>, source: impl Error + Send + Sync + 'static) -> Self {
        QiError::Monitor {
            context: context.into(),
            source: Box::new(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Inner;
    impl fmt::Display for Inner {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "inner cause")
        }
    }
    impl Error for Inner {}

    #[test]
    fn display_is_informative() {
        let e = QiError::Config("zero client nodes".into());
        assert!(e.to_string().contains("zero client nodes"));
        let e = QiError::Shape {
            what: "feature block floats",
            expected: 10,
            got: 3,
        };
        assert!(e.to_string().contains("expected 10"));
        assert!(e.to_string().contains("got 3"));
    }

    #[test]
    fn schema_mismatch_names_both_schemas() {
        let e = QiError::SchemaMismatch {
            context: "loading model version 2".into(),
            expected: "window=1000ms".into(),
            got: "window=2000ms".into(),
        };
        let s = e.to_string();
        assert!(s.contains("feature schema mismatch"));
        assert!(s.contains("loading model version 2"));
        assert!(s.contains("window=1000ms"));
        assert!(s.contains("window=2000ms"));
        assert!(e.source().is_none());
    }

    #[test]
    fn control_variant_displays_message() {
        let e = QiError::Control("rate limit must be positive".into());
        let s = e.to_string();
        assert!(s.contains("control failure"));
        assert!(s.contains("rate limit must be positive"));
        assert!(e.source().is_none());
    }

    #[test]
    fn monitor_variant_exposes_source() {
        let e = QiError::monitor("parsing a DXT trace", Inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("inner cause"));
        assert!(QiError::Config("x".into()).source().is_none());
    }
}
