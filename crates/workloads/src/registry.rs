//! A name-addressable registry of every workload in the suite, used by
//! the dataset-generation configs and the experiment harnesses.

use std::sync::Arc;

use crate::apps::{AmrexProxy, EnzoProxy, OpenPmdProxy};
use crate::common::Workload;
use crate::dlio::{DlioBert, DlioUnet3d};
use crate::io500::{IorEasy, IorHard, MdtEasyWrite, MdtHard, MdtPhase};

/// Every workload the reproduction ships, by stable name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadKind {
    /// IO500 `ior-easy-read`.
    IorEasyRead,
    /// IO500 `ior-hard-read`.
    IorHardRead,
    /// IO500 `mdtest-hard-read`.
    MdtHardRead,
    /// IO500 `ior-easy-write`.
    IorEasyWrite,
    /// IO500 `ior-hard-write`.
    IorHardWrite,
    /// IO500 `mdtest-easy-write`.
    MdtEasyWrite,
    /// IO500 `mdtest-hard-write`.
    MdtHardWrite,
    /// DLIO Unet3D data loader.
    DlioUnet3d,
    /// DLIO BERT data loader.
    DlioBert,
    /// AMReX application proxy.
    Amrex,
    /// Enzo application proxy.
    Enzo,
    /// OpenPMD application proxy.
    OpenPmd,
    /// IO500 `mdtest-easy-stat` (extended phase, not in Table I).
    MdtEasyStat,
    /// IO500 `mdtest-easy-delete` (extended phase).
    MdtEasyDelete,
    /// IO500 `mdtest-hard-stat` (extended phase).
    MdtHardStat,
    /// IO500 `mdtest-hard-delete` (extended phase).
    MdtHardDelete,
}

impl WorkloadKind {
    /// The seven IO500 tasks, in the paper's Table I row/column order.
    pub const IO500: [WorkloadKind; 7] = [
        WorkloadKind::IorEasyRead,
        WorkloadKind::IorHardRead,
        WorkloadKind::MdtHardRead,
        WorkloadKind::IorEasyWrite,
        WorkloadKind::IorHardWrite,
        WorkloadKind::MdtEasyWrite,
        WorkloadKind::MdtHardWrite,
    ];

    /// The two DLIO configurations.
    pub const DLIO: [WorkloadKind; 2] = [WorkloadKind::DlioUnet3d, WorkloadKind::DlioBert];

    /// The three application proxies.
    pub const APPS: [WorkloadKind; 3] = [
        WorkloadKind::Amrex,
        WorkloadKind::Enzo,
        WorkloadKind::OpenPmd,
    ];

    /// The extended mdtest phases of a full IO500 run (stat/delete),
    /// beyond the paper's seven Table I tasks.
    pub const IO500_EXTENDED: [WorkloadKind; 4] = [
        WorkloadKind::MdtEasyStat,
        WorkloadKind::MdtEasyDelete,
        WorkloadKind::MdtHardStat,
        WorkloadKind::MdtHardDelete,
    ];

    /// Stable name (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::IorEasyRead => "ior-easy-read",
            WorkloadKind::IorHardRead => "ior-hard-read",
            WorkloadKind::MdtHardRead => "mdt-hard-read",
            WorkloadKind::IorEasyWrite => "ior-easy-write",
            WorkloadKind::IorHardWrite => "ior-hard-write",
            WorkloadKind::MdtEasyWrite => "mdt-easy-write",
            WorkloadKind::MdtHardWrite => "mdt-hard-write",
            WorkloadKind::DlioUnet3d => "dlio-unet3d",
            WorkloadKind::DlioBert => "dlio-bert",
            WorkloadKind::Amrex => "amrex",
            WorkloadKind::Enzo => "enzo",
            WorkloadKind::OpenPmd => "openpmd",
            WorkloadKind::MdtEasyStat => "mdt-easy-stat",
            WorkloadKind::MdtEasyDelete => "mdt-easy-delete",
            WorkloadKind::MdtHardStat => "mdt-hard-stat",
            WorkloadKind::MdtHardDelete => "mdt-hard-delete",
        }
    }

    /// Parse a stable name back into a kind.
    pub fn from_name(name: &str) -> Option<Self> {
        let all = [
            WorkloadKind::IorEasyRead,
            WorkloadKind::IorHardRead,
            WorkloadKind::MdtHardRead,
            WorkloadKind::IorEasyWrite,
            WorkloadKind::IorHardWrite,
            WorkloadKind::MdtEasyWrite,
            WorkloadKind::MdtHardWrite,
            WorkloadKind::DlioUnet3d,
            WorkloadKind::DlioBert,
            WorkloadKind::Amrex,
            WorkloadKind::Enzo,
            WorkloadKind::OpenPmd,
            WorkloadKind::MdtEasyStat,
            WorkloadKind::MdtEasyDelete,
            WorkloadKind::MdtHardStat,
            WorkloadKind::MdtHardDelete,
        ];
        all.into_iter().find(|k| k.name() == name)
    }

    /// Build the workload at its default reproduction scale.
    pub fn build(self) -> Arc<dyn Workload> {
        match self {
            WorkloadKind::IorEasyRead => Arc::new(IorEasy::read()),
            WorkloadKind::IorHardRead => Arc::new(IorHard::read()),
            WorkloadKind::MdtHardRead => Arc::new(MdtHard::read()),
            WorkloadKind::IorEasyWrite => Arc::new(IorEasy::write()),
            WorkloadKind::IorHardWrite => Arc::new(IorHard::write()),
            WorkloadKind::MdtEasyWrite => Arc::new(MdtEasyWrite::default()),
            WorkloadKind::MdtHardWrite => Arc::new(MdtHard::write()),
            WorkloadKind::DlioUnet3d => Arc::new(DlioUnet3d::default()),
            WorkloadKind::DlioBert => Arc::new(DlioBert::default()),
            WorkloadKind::Amrex => Arc::new(AmrexProxy::default()),
            WorkloadKind::Enzo => Arc::new(EnzoProxy::default()),
            WorkloadKind::OpenPmd => Arc::new(OpenPmdProxy::default()),
            WorkloadKind::MdtEasyStat => Arc::new(MdtPhase::easy_stat()),
            WorkloadKind::MdtEasyDelete => Arc::new(MdtPhase::easy_delete()),
            WorkloadKind::MdtHardStat => Arc::new(MdtPhase::hard_stat()),
            WorkloadKind::MdtHardDelete => Arc::new(MdtPhase::hard_delete()),
        }
    }

    /// Build a reduced-scale variant for fast tests and CI.
    pub fn build_small(self) -> Arc<dyn Workload> {
        match self {
            WorkloadKind::IorEasyRead => Arc::new(IorEasy {
                file_bytes: 32 * 1024 * 1024,
                ..IorEasy::read()
            }),
            WorkloadKind::IorHardRead => Arc::new(IorHard {
                segments: 120,
                ..IorHard::read()
            }),
            WorkloadKind::MdtHardRead => Arc::new(MdtHard {
                files_per_rank: 60,
                ..MdtHard::read()
            }),
            WorkloadKind::IorEasyWrite => Arc::new(IorEasy {
                file_bytes: 32 * 1024 * 1024,
                ..IorEasy::write()
            }),
            WorkloadKind::IorHardWrite => Arc::new(IorHard {
                segments: 120,
                ..IorHard::write()
            }),
            WorkloadKind::MdtEasyWrite => Arc::new(MdtEasyWrite {
                files_per_rank: 100,
            }),
            WorkloadKind::MdtHardWrite => Arc::new(MdtHard {
                files_per_rank: 60,
                ..MdtHard::write()
            }),
            WorkloadKind::DlioUnet3d => Arc::new(DlioUnet3d {
                steps: 8,
                dataset_files: 16,
                sample_bytes: 2 * 1024 * 1024,
                ..DlioUnet3d::default()
            }),
            WorkloadKind::DlioBert => Arc::new(DlioBert {
                steps: 60,
                ..DlioBert::default()
            }),
            WorkloadKind::Amrex => Arc::new(AmrexProxy {
                cycles: 6,
                plot_every: 2,
                dump_bytes: 16 * 1024 * 1024,
                ..AmrexProxy::default()
            }),
            WorkloadKind::Enzo => Arc::new(EnzoProxy {
                cycles: 10,
                ic_bytes: 8 * 1024 * 1024,
                ..EnzoProxy::default()
            }),
            WorkloadKind::OpenPmd => Arc::new(OpenPmdProxy {
                iterations: 6,
                ..OpenPmdProxy::default()
            }),
            WorkloadKind::MdtEasyStat => Arc::new(MdtPhase {
                files_per_rank: 100,
                ..MdtPhase::easy_stat()
            }),
            WorkloadKind::MdtEasyDelete => Arc::new(MdtPhase {
                files_per_rank: 100,
                ..MdtPhase::easy_delete()
            }),
            WorkloadKind::MdtHardStat => Arc::new(MdtPhase {
                files_per_rank: 60,
                ..MdtPhase::hard_stat()
            }),
            WorkloadKind::MdtHardDelete => Arc::new(MdtPhase {
                files_per_rank: 60,
                ..MdtPhase::hard_delete()
            }),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in WorkloadKind::IO500
            .iter()
            .chain(WorkloadKind::DLIO.iter())
            .chain(WorkloadKind::APPS.iter())
            .chain(WorkloadKind::IO500_EXTENDED.iter())
        {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(*k));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }

    #[test]
    fn build_matches_name() {
        for k in WorkloadKind::IO500 {
            assert_eq!(k.build().name(), k.name());
            assert_eq!(k.build_small().name(), k.name());
        }
    }

    #[test]
    fn io500_order_matches_table_one() {
        let names: Vec<&str> = WorkloadKind::IO500.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "ior-easy-read",
                "ior-hard-read",
                "mdt-hard-read",
                "ior-easy-write",
                "ior-hard-write",
                "mdt-easy-write",
                "mdt-hard-write",
            ]
        );
    }
}
