//! Trace-replay workload: turn a recorded operation trace (e.g. a
//! Darshan-DXT-like log exported by `qi-monitor::dxt`) back into a
//! runnable workload.
//!
//! This closes the loop the paper's data pipeline implies: capture an
//! application's I/O once, then replay it — alone or under synthetic
//! interference — without the application. Replay preserves each rank's
//! operation order, sizes, and *think time* (the gap between one
//! operation completing and the next being issued becomes a compute
//! step); the actual I/O service times are re-simulated.
//!
//! Because the original trace does not retain file identities or
//! offsets (DXT-style logs are per-op timings), replay maps each rank's
//! data stream onto one private file with sequential offsets — the
//! pattern-preserving approximation documented in DESIGN.md.

use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::{IoOp, OpKind, OpRecord};
use qi_simkit::time::SimTime;

use crate::common::{nsdir, nsfile, Placement, PrecreateFile, ScriptStep, Workload};

/// A workload that replays a recorded trace, rank by rank.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    /// Per-rank op lists (kind, bytes, issue time, completion time),
    /// sorted by sequence.
    per_rank: Vec<Vec<(OpKind, u64, SimTime, SimTime)>>,
    /// Total bytes each rank reads (for precreating its input file).
    read_bytes: Vec<u64>,
    /// Scale factor applied to think times (1.0 = as recorded).
    pub think_scale: f64,
}

impl TraceReplay {
    /// Build a replay from operation records (any order; ranks are taken
    /// from the tokens, sequences restored from `seq`).
    pub fn from_records(records: &[OpRecord]) -> Self {
        assert!(!records.is_empty(), "empty trace");
        // (seq, kind, bytes, issued, completed) per rank, pre-sorting.
        type RawOp = (u64, OpKind, u64, SimTime, SimTime);
        let n_ranks = records.iter().map(|r| r.token.rank).max().unwrap_or(0) as usize + 1;
        let mut per_rank: Vec<Vec<RawOp>> = vec![Vec::new(); n_ranks];
        for r in records {
            per_rank[r.token.rank as usize].push((
                r.token.seq,
                r.kind,
                r.bytes,
                r.issued,
                r.completed,
            ));
        }
        let mut out = Vec::with_capacity(n_ranks);
        let mut read_bytes = Vec::with_capacity(n_ranks);
        for mut ops in per_rank {
            ops.sort_unstable_by_key(|&(seq, ..)| seq);
            read_bytes.push(
                ops.iter()
                    .filter(|(_, k, ..)| *k == OpKind::Read)
                    .map(|&(_, _, b, ..)| b)
                    .sum(),
            );
            out.push(
                ops.into_iter()
                    .map(|(_, k, b, i, c)| (k, b, i, c))
                    .collect(),
            );
        }
        TraceReplay {
            per_rank: out,
            read_bytes,
            think_scale: 1.0,
        }
    }

    /// Build a replay straight from a DXT-like log (see
    /// `qi_monitor::dxt::import_dxt` for the format).
    pub fn from_dxt(text: &str) -> Result<Self, String> {
        let records = qi_monitor::dxt::import_dxt(text, AppId(0)).map_err(|e| e.to_string())?;
        if records.is_empty() {
            return Err("trace contains no operations".to_string());
        }
        Ok(TraceReplay::from_records(&records))
    }

    /// Ranks recorded in the trace.
    pub fn n_ranks(&self) -> u32 {
        self.per_rank.len() as u32
    }

    /// Operations recorded for `rank`.
    pub fn ops_of_rank(&self, rank: u32) -> usize {
        self.per_rank.get(rank as usize).map(Vec::len).unwrap_or(0)
    }
}

impl Workload for TraceReplay {
    fn name(&self) -> String {
        "trace-replay".into()
    }

    fn precreate(&self, ns: AppId, ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        // One private data file per rank, big enough for its reads
        // (writes allocate on demand).
        (0..ranks.min(self.n_ranks()))
            .filter(|&r| self.read_bytes[r as usize] > 0)
            .map(|r| PrecreateFile {
                file: nsfile(ns, r as u64),
                len: self.read_bytes[r as usize],
                placement: Placement::RoundRobin(None),
            })
            .collect()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let Some(ops) = self.per_rank.get(rank as usize) else {
            return Vec::new();
        };
        let file = nsfile(ns, rank as u64);
        let dir = nsdir(ns, 0);
        let mut steps = Vec::with_capacity(ops.len() * 2);
        let mut read_off = 0u64;
        let mut write_off = 0u64;
        let mut prev_complete: Option<SimTime> = None;
        for &(kind, bytes, issued, completed) in ops {
            // Think time: the recorded gap between the previous op's
            // completion and this op's issue.
            if let Some(prev) = prev_complete {
                let gap = issued.saturating_since(prev);
                if gap.as_nanos() > 0 && self.think_scale > 0.0 {
                    steps.push(ScriptStep::Compute(qi_simkit::SimDuration::from_secs_f64(
                        gap.as_secs_f64() * self.think_scale,
                    )));
                }
            }
            prev_complete = Some(completed);
            let op = match kind {
                OpKind::Read => {
                    let op = IoOp::Read {
                        file,
                        offset: read_off,
                        len: bytes.max(1),
                    };
                    read_off += bytes.max(1);
                    op
                }
                OpKind::Write => {
                    let op = IoOp::Write {
                        file,
                        offset: write_off,
                        len: bytes.max(1),
                    };
                    write_off += bytes.max(1);
                    op
                }
                OpKind::Open => IoOp::Open { file },
                OpKind::Stat => IoOp::Stat { file },
                OpKind::Close => IoOp::Close { file },
                OpKind::Create => IoOp::Create {
                    file: nsfile(ns, 1_000_000 + rank as u64),
                    dir,
                    stripe: None,
                },
                OpKind::Unlink => IoOp::Unlink {
                    file: nsfile(ns, 1_000_000 + rank as u64),
                    dir,
                },
                OpKind::Mkdir => IoOp::Mkdir { dir },
            };
            steps.push(ScriptStep::Op(op));
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy;
    use qi_pfs::cluster::Cluster;
    use qi_pfs::ids::OpToken;
    use std::sync::Arc;

    fn record(
        rank: u32,
        seq: u64,
        kind: OpKind,
        bytes: u64,
        issue_ms: u64,
        dur_ms: u64,
    ) -> OpRecord {
        OpRecord {
            token: OpToken {
                app: AppId(0),
                rank,
                seq,
            },
            kind,
            bytes,
            issued: SimTime::from_millis(issue_ms),
            completed: SimTime::from_millis(issue_ms + dur_ms),
        }
    }

    fn sample_records() -> Vec<OpRecord> {
        vec![
            record(0, 0, OpKind::Open, 0, 0, 1),
            record(0, 1, OpKind::Read, 1024 * 1024, 10, 8),
            record(0, 2, OpKind::Read, 1024 * 1024, 120, 8), // 102 ms think
            record(0, 3, OpKind::Close, 0, 130, 1),
            record(1, 0, OpKind::Write, 4096, 0, 2),
        ]
    }

    #[test]
    fn replay_preserves_order_sizes_and_think_time() {
        let replay = TraceReplay::from_records(&sample_records());
        assert_eq!(replay.n_ranks(), 2);
        assert_eq!(replay.ops_of_rank(0), 4);
        let script = replay.script(AppId(0), 0, 2, 0, &ClusterConfig::small());
        // open, (think), read, (think), read, (think), close
        let kinds: Vec<&str> = script
            .iter()
            .map(|s| match s {
                ScriptStep::Op(op) => op.kind().label(),
                ScriptStep::Compute(_) => "think",
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["open", "think", "read", "think", "read", "think", "close"]
        );
        // The second think gap is issue(120ms) - complete(18ms) = 102 ms.
        if let ScriptStep::Compute(d) = &script[3] {
            assert!((d.as_secs_f64() - 0.102).abs() < 1e-9, "{d}");
        } else {
            panic!("expected think time");
        }
        // Reads are sequential within the rank's private file.
        let offsets: Vec<u64> = script
            .iter()
            .filter_map(|s| match s {
                ScriptStep::Op(IoOp::Read { offset, .. }) => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![0, 1024 * 1024]);
    }

    #[test]
    fn replay_precreates_read_inputs() {
        let replay = TraceReplay::from_records(&sample_records());
        let pre = replay.precreate(AppId(0), 2, &ClusterConfig::small());
        // Rank 0 reads 2 MiB, rank 1 reads nothing.
        assert_eq!(pre.len(), 1);
        assert_eq!(pre[0].len, 2 * 1024 * 1024);
    }

    #[test]
    fn replay_runs_on_a_cluster() {
        let replay: Arc<dyn Workload> = Arc::new(TraceReplay::from_records(&sample_records()));
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(1)
            .build()
            .expect("valid test cluster");
        let nodes = cl.client_nodes();
        let app = deploy(&mut cl, &replay, 2, &nodes[..2], 0, false);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        assert!(trace.completion_of(app).is_some());
        assert_eq!(trace.ops_of(app).count(), 5);
    }

    #[test]
    fn dxt_round_trip_into_replay() {
        // Export a real run's trace and replay it.
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(3)
            .build()
            .expect("valid test cluster");
        let file = qi_pfs::ids::FileKey {
            app: AppId(0),
            num: 7,
        };
        cl.precreate_file(file, 8 * 1024 * 1024, None);
        let mut i = 0u64;
        let prog = move |_now: SimTime| {
            if i >= 8 {
                return qi_pfs::ops::ProgramStep::Finished;
            }
            i += 1;
            qi_pfs::ops::ProgramStep::Op(IoOp::Read {
                file,
                offset: (i - 1) * 1024 * 1024,
                len: 1024 * 1024,
            })
        };
        let app = cl.add_app("orig", vec![Box::new(prog)], &[qi_pfs::ids::NodeId(0)]);
        let trace = cl.run_until_app(app, SimTime::from_secs(30));
        let dxt = qi_monitor::dxt::export_dxt(&trace, app);

        let replay: Arc<dyn Workload> = Arc::new(TraceReplay::from_dxt(&dxt).expect("parse trace"));
        let mut cl2 = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(4)
            .build()
            .expect("valid test cluster");
        let nodes = cl2.client_nodes();
        let app2 = deploy(&mut cl2, &replay, 1, &nodes[..1], 0, false);
        let trace2 = cl2.run_until_app(app2, SimTime::from_secs(30));
        assert_eq!(trace2.ops_of(app2).count(), 8);
        let bytes: u64 = trace2.ops_of(app2).map(|o| o.bytes).sum();
        assert_eq!(bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn empty_trace_is_rejected() {
        assert!(TraceReplay::from_dxt("# nothing\n").is_err());
    }
}
