//! The IO500 benchmark family (paper §II-A, Table I).
//!
//! Seven tasks reproducing the access-pattern geometry of the IO500
//! suite's IOR and MDTest configurations:
//!
//! | task | pattern |
//! |---|---|
//! | `ior-easy-write` | file-per-process, 1 MiB sequential writes |
//! | `ior-easy-read`  | file-per-process, 1 MiB sequential reads |
//! | `ior-hard-write` | one shared file, 47008 B strided writes |
//! | `ior-hard-read`  | one shared file, 47008 B strided reads |
//! | `mdt-easy-write` | empty-file creates in a private dir per rank |
//! | `mdt-hard-write` | creates + 3901 B bodies in ONE shared dir |
//! | `mdt-hard-read`  | open + 3901 B read of the shared-dir files |
//!
//! Sizes are scaled down from the real benchmark so a standalone instance
//! finishes in seconds of simulated time; the *shape* (sequential vs
//! strided, private vs shared directory, bulk vs tiny transfers) is what
//! drives interference, and that is preserved.

use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::{AppId, DeviceId};
use qi_pfs::ops::IoOp;

use crate::common::{all_osts, nsdir, nsfile, Placement, PrecreateFile, ScriptStep, Workload};

/// IOR transfer size for the "hard" tasks (the IO500-mandated odd size).
pub const IOR_HARD_XFER: u64 = 47_008;
/// File body written/read per file by the mdtest-hard tasks.
pub const MDT_HARD_BODY: u64 = 3_901;

/// File number of the single shared ior-hard file.
const SHARED_FILE: u64 = 1 << 32;
/// Directory number of the shared mdtest-hard directory.
const SHARED_DIR: u64 = 0;
/// Base for mdtest file numbers: `MDT_FILE_BASE + rank * 1e6 + i`.
const MDT_FILE_BASE: u64 = 1 << 33;

fn mdt_file(ns: AppId, rank: u32, i: u32) -> qi_pfs::ids::FileKey {
    nsfile(ns, MDT_FILE_BASE + rank as u64 * 1_000_000 + i as u64)
}

/// Place rank `r`'s file-per-process file on one OST, offset by the
/// application namespace so concurrent instances spread over all OSTs
/// the way Lustre's allocator would, while staying deterministic for a
/// given instance across baseline/interfered runs.
fn rank_ost(cfg: &ClusterConfig, ns: AppId, rank: u32) -> Vec<DeviceId> {
    vec![DeviceId((rank + ns.0) % cfg.n_osts())]
}

/// `ior-easy`: file-per-process sequential I/O with large transfers.
#[derive(Clone, Debug)]
pub struct IorEasy {
    /// True for the write task, false for the read task.
    pub write: bool,
    /// Per-rank file size in bytes.
    pub file_bytes: u64,
    /// Transfer size in bytes.
    pub xfer: u64,
}

impl IorEasy {
    /// The IO500 `ior-easy-write` task at reproduction scale.
    pub fn write() -> Self {
        IorEasy {
            write: true,
            file_bytes: 256 * 1024 * 1024,
            xfer: 1024 * 1024,
        }
    }

    /// The IO500 `ior-easy-read` task at reproduction scale.
    pub fn read() -> Self {
        IorEasy {
            write: false,
            ..IorEasy::write()
        }
    }
}

impl Workload for IorEasy {
    fn name(&self) -> String {
        if self.write {
            "ior-easy-write".into()
        } else {
            "ior-easy-read".into()
        }
    }

    fn precreate(&self, ns: AppId, ranks: u32, cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        // Both tasks get their file precreated with balanced placement:
        // the write task overwrites it (pre-allocated extents, like a
        // rewrite of an existing dataset), the read task reads it.
        (0..ranks)
            .map(|r| PrecreateFile {
                file: nsfile(ns, r as u64),
                len: self.file_bytes,
                placement: Placement::Explicit {
                    stripe_size: self.xfer,
                    osts: rank_ost(cfg, ns, r),
                },
            })
            .collect()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let file = nsfile(ns, rank as u64);
        let n = self.file_bytes / self.xfer;
        let mut steps = Vec::with_capacity(n as usize + 2);
        steps.push(ScriptStep::Op(IoOp::Open { file }));
        for i in 0..n {
            let op = if self.write {
                IoOp::Write {
                    file,
                    offset: i * self.xfer,
                    len: self.xfer,
                }
            } else {
                IoOp::Read {
                    file,
                    offset: i * self.xfer,
                    len: self.xfer,
                }
            };
            steps.push(ScriptStep::Op(op));
        }
        steps.push(ScriptStep::Op(IoOp::Close { file }));
        steps
    }
}

/// `ior-hard`: one shared wide-striped file, small strided transfers.
#[derive(Clone, Debug)]
pub struct IorHard {
    /// True for the write task, false for the read task.
    pub write: bool,
    /// Segments (strided transfers) per rank.
    pub segments: u64,
    /// Transfer size in bytes (IO500 uses 47008).
    pub xfer: u64,
}

impl IorHard {
    /// The IO500 `ior-hard-write` task at reproduction scale.
    pub fn write() -> Self {
        IorHard {
            write: true,
            segments: 600,
            xfer: IOR_HARD_XFER,
        }
    }

    /// The IO500 `ior-hard-read` task at reproduction scale.
    pub fn read() -> Self {
        IorHard {
            write: false,
            ..IorHard::write()
        }
    }

    fn shared_len(&self, ranks: u32) -> u64 {
        self.segments * ranks as u64 * self.xfer
    }
}

impl Workload for IorHard {
    fn name(&self) -> String {
        if self.write {
            "ior-hard-write".into()
        } else {
            "ior-hard-read".into()
        }
    }

    fn precreate(&self, ns: AppId, ranks: u32, cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        vec![PrecreateFile {
            file: nsfile(ns, SHARED_FILE),
            len: self.shared_len(ranks),
            placement: Placement::Explicit {
                stripe_size: 1024 * 1024,
                osts: all_osts(cfg),
            },
        }]
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let file = nsfile(ns, SHARED_FILE);
        let mut steps = Vec::with_capacity(self.segments as usize + 2);
        steps.push(ScriptStep::Op(IoOp::Open { file }));
        for seg in 0..self.segments {
            let offset = (seg * ranks as u64 + rank as u64) * self.xfer;
            let op = if self.write {
                IoOp::Write {
                    file,
                    offset,
                    len: self.xfer,
                }
            } else {
                IoOp::Read {
                    file,
                    offset,
                    len: self.xfer,
                }
            };
            steps.push(ScriptStep::Op(op));
        }
        steps.push(ScriptStep::Op(IoOp::Close { file }));
        steps
    }
}

/// `mdtest-easy-write`: empty-file creates in a private per-rank
/// directory — metadata throughput without directory contention.
#[derive(Clone, Debug)]
pub struct MdtEasyWrite {
    /// Files created per rank.
    pub files_per_rank: u32,
}

impl Default for MdtEasyWrite {
    fn default() -> Self {
        MdtEasyWrite {
            files_per_rank: 500,
        }
    }
}

impl Workload for MdtEasyWrite {
    fn name(&self) -> String {
        "mdt-easy-write".into()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let dir = nsdir(ns, 100 + rank as u64);
        let mut steps = Vec::with_capacity(self.files_per_rank as usize + 1);
        steps.push(ScriptStep::Op(IoOp::Mkdir { dir }));
        for i in 0..self.files_per_rank {
            steps.push(ScriptStep::Op(IoOp::Create {
                file: mdt_file(ns, rank, i),
                dir,
                stripe: None,
            }));
        }
        steps
    }
}

/// `mdtest-hard`: every rank works in ONE shared directory; each file
/// carries a 3901-byte body (write task writes it, read task opens and
/// reads it back).
#[derive(Clone, Debug)]
pub struct MdtHard {
    /// True for the write task, false for the read task.
    pub write: bool,
    /// Files per rank.
    pub files_per_rank: u32,
    /// File body size in bytes (IO500 uses 3901).
    pub body: u64,
}

impl MdtHard {
    /// The IO500 `mdtest-hard-write` task at reproduction scale.
    pub fn write() -> Self {
        MdtHard {
            write: true,
            files_per_rank: 300,
            body: MDT_HARD_BODY,
        }
    }

    /// The IO500 `mdtest-hard-read` task at reproduction scale.
    pub fn read() -> Self {
        MdtHard {
            write: false,
            ..MdtHard::write()
        }
    }
}

impl Workload for MdtHard {
    fn name(&self) -> String {
        if self.write {
            "mdt-hard-write".into()
        } else {
            "mdt-hard-read".into()
        }
    }

    fn precreate(&self, ns: AppId, ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        if self.write {
            return Vec::new();
        }
        // The read task needs the shared-directory files to exist.
        let mut out = Vec::new();
        for r in 0..ranks {
            for i in 0..self.files_per_rank {
                out.push(PrecreateFile {
                    file: mdt_file(ns, r, i),
                    len: self.body,
                    placement: Placement::RoundRobin(None),
                });
            }
        }
        out
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let dir = nsdir(ns, SHARED_DIR);
        let mut steps = Vec::with_capacity(self.files_per_rank as usize * 3);
        for i in 0..self.files_per_rank {
            let file = mdt_file(ns, rank, i);
            if self.write {
                steps.push(ScriptStep::Op(IoOp::Create {
                    file,
                    dir,
                    stripe: None,
                }));
                steps.push(ScriptStep::Op(IoOp::Write {
                    file,
                    offset: 0,
                    len: self.body,
                }));
                steps.push(ScriptStep::Op(IoOp::Close { file }));
            } else {
                steps.push(ScriptStep::Op(IoOp::Open { file }));
                steps.push(ScriptStep::Op(IoOp::Read {
                    file,
                    offset: 0,
                    len: self.body,
                }));
                steps.push(ScriptStep::Op(IoOp::Close { file }));
            }
        }
        steps
    }
}

/// The remaining mdtest phases of the full IO500 run: `stat` and
/// `delete` over the files created by the corresponding write phase, in
/// either the private-directory ("easy") or shared-directory ("hard")
/// layout. These are not among the seven tasks of the paper's Table I,
/// but they broaden the interference-pattern vocabulary available to the
/// dataset generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MdtOp {
    /// `stat` every file.
    Stat,
    /// `unlink` every file (acquires the directory lock per file).
    Delete,
}

/// An mdtest stat/delete phase.
#[derive(Clone, Debug)]
pub struct MdtPhase {
    /// Shared directory ("hard") vs a private directory per rank ("easy").
    pub shared_dir: bool,
    /// Which phase.
    pub op: MdtOp,
    /// Files per rank.
    pub files_per_rank: u32,
    /// Body bytes of the precreated files (0 for the easy layout).
    pub body: u64,
}

impl MdtPhase {
    /// `mdtest-easy-stat` at reproduction scale.
    pub fn easy_stat() -> Self {
        MdtPhase {
            shared_dir: false,
            op: MdtOp::Stat,
            files_per_rank: 500,
            body: 0,
        }
    }

    /// `mdtest-easy-delete` at reproduction scale.
    pub fn easy_delete() -> Self {
        MdtPhase {
            op: MdtOp::Delete,
            ..MdtPhase::easy_stat()
        }
    }

    /// `mdtest-hard-stat` at reproduction scale.
    pub fn hard_stat() -> Self {
        MdtPhase {
            shared_dir: true,
            op: MdtOp::Stat,
            files_per_rank: 300,
            body: MDT_HARD_BODY,
        }
    }

    /// `mdtest-hard-delete` at reproduction scale.
    pub fn hard_delete() -> Self {
        MdtPhase {
            op: MdtOp::Delete,
            ..MdtPhase::hard_stat()
        }
    }

    fn dir(&self, ns: AppId, rank: u32) -> qi_pfs::ids::DirKey {
        if self.shared_dir {
            nsdir(ns, SHARED_DIR)
        } else {
            nsdir(ns, 100 + rank as u64)
        }
    }
}

impl Workload for MdtPhase {
    fn name(&self) -> String {
        let layout = if self.shared_dir { "hard" } else { "easy" };
        let op = match self.op {
            MdtOp::Stat => "stat",
            MdtOp::Delete => "delete",
        };
        format!("mdt-{layout}-{op}")
    }

    fn precreate(&self, ns: AppId, ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        // The files the write phase would have left behind.
        let mut out = Vec::new();
        for r in 0..ranks {
            for i in 0..self.files_per_rank {
                out.push(PrecreateFile {
                    file: mdt_file(ns, r, i),
                    len: self.body,
                    placement: Placement::RoundRobin(None),
                });
            }
        }
        out
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        _seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let dir = self.dir(ns, rank);
        (0..self.files_per_rank)
            .map(|i| {
                let file = mdt_file(ns, rank, i);
                ScriptStep::Op(match self.op {
                    MdtOp::Stat => IoOp::Stat { file },
                    MdtOp::Delete => IoOp::Unlink { file, dir },
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy;
    use qi_pfs::cluster::Cluster;
    use qi_pfs::ops::OpKind;
    use qi_simkit::time::SimTime;
    use std::sync::Arc;

    fn run_alone(w: Arc<dyn Workload>, ranks: u32) -> qi_pfs::ops::RunTrace {
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(11)
            .build()
            .expect("valid test cluster");
        let nodes = cl.client_nodes();
        let app = deploy(&mut cl, &w, ranks, &nodes[..2], 3, false);
        let trace = cl.run_until_app(app, SimTime::from_secs(600));
        assert!(
            trace.completion_of(app).is_some(),
            "{} did not finish",
            w.name()
        );
        trace
    }

    #[test]
    fn ior_easy_write_is_sequential_per_rank() {
        let w = IorEasy {
            file_bytes: 8 * 1024 * 1024,
            ..IorEasy::write()
        };
        let script = w.script(AppId(0), 0, 2, 0, &ClusterConfig::small());
        // open + 8 writes + close
        assert_eq!(script.len(), 10);
        let mut prev_end = 0;
        for s in &script {
            if let ScriptStep::Op(IoOp::Write { offset, len, .. }) = s {
                assert_eq!(*offset, prev_end);
                prev_end = offset + len;
            }
        }
        assert_eq!(prev_end, 8 * 1024 * 1024);
    }

    #[test]
    fn ior_hard_offsets_are_disjoint_across_ranks() {
        let w = IorHard::write();
        let cfg = ClusterConfig::small();
        let mut seen = std::collections::HashSet::new();
        for r in 0..4 {
            for s in w.script(AppId(0), r, 4, 0, &cfg) {
                if let ScriptStep::Op(IoOp::Write { offset, .. }) = s {
                    assert!(seen.insert(offset), "offset {offset} written twice");
                }
            }
        }
        assert_eq!(seen.len(), 4 * w.segments as usize);
    }

    #[test]
    fn ior_easy_runs_to_completion() {
        let w: Arc<dyn Workload> = Arc::new(IorEasy {
            file_bytes: 16 * 1024 * 1024,
            ..IorEasy::write()
        });
        let trace = run_alone(w, 2);
        let writes = trace.ops.iter().filter(|o| o.kind == OpKind::Write).count();
        assert_eq!(writes, 2 * 16);
    }

    #[test]
    fn ior_easy_read_slower_than_cached_write() {
        // Reads hit the disk; writes are absorbed by the cache, so the
        // standalone read task must take longer.
        let wr: Arc<dyn Workload> = Arc::new(IorEasy {
            file_bytes: 16 * 1024 * 1024,
            ..IorEasy::write()
        });
        let rd: Arc<dyn Workload> = Arc::new(IorEasy {
            file_bytes: 16 * 1024 * 1024,
            ..IorEasy::read()
        });
        let tw = run_alone(wr, 2).end.as_secs_f64();
        let tr = run_alone(rd, 2).end.as_secs_f64();
        assert!(tr > tw, "read {tr} not slower than cached write {tw}");
    }

    #[test]
    fn mdt_easy_creates_in_private_dirs() {
        let w = MdtEasyWrite { files_per_rank: 10 };
        let cfg = ClusterConfig::small();
        let s0 = w.script(AppId(0), 0, 2, 0, &cfg);
        let s1 = w.script(AppId(0), 1, 2, 0, &cfg);
        let dir_of = |s: &[ScriptStep]| match &s[1] {
            ScriptStep::Op(IoOp::Create { dir, .. }) => *dir,
            other => panic!("expected create, got {other:?}"),
        };
        assert_ne!(dir_of(&s0), dir_of(&s1), "mdt-easy dirs must be private");
    }

    #[test]
    fn mdt_hard_shares_one_dir_and_writes_bodies() {
        let w = MdtHard::write();
        let cfg = ClusterConfig::small();
        let s0 = w.script(AppId(0), 0, 2, 0, &cfg);
        let s1 = w.script(AppId(0), 1, 2, 0, &cfg);
        let dir_of = |s: &[ScriptStep]| match &s[0] {
            ScriptStep::Op(IoOp::Create { dir, .. }) => *dir,
            other => panic!("expected create, got {other:?}"),
        };
        assert_eq!(dir_of(&s0), dir_of(&s1), "mdt-hard dir must be shared");
        assert!(s0.iter().any(|s| matches!(
            s,
            ScriptStep::Op(IoOp::Write { len, .. }) if *len == MDT_HARD_BODY
        )));
    }

    #[test]
    fn mdt_hard_read_precreates_bodies() {
        let w = MdtHard::read();
        let pre = w.precreate(AppId(0), 2, &ClusterConfig::small());
        assert_eq!(pre.len(), 2 * w.files_per_rank as usize);
        assert!(pre.iter().all(|p| p.len == MDT_HARD_BODY));
    }

    #[test]
    fn mdt_phase_names_and_layouts() {
        assert_eq!(MdtPhase::easy_stat().name(), "mdt-easy-stat");
        assert_eq!(MdtPhase::easy_delete().name(), "mdt-easy-delete");
        assert_eq!(MdtPhase::hard_stat().name(), "mdt-hard-stat");
        assert_eq!(MdtPhase::hard_delete().name(), "mdt-hard-delete");
        // Hard phases share one directory; easy phases do not.
        let cfg = ClusterConfig::small();
        let hard = MdtPhase::hard_delete();
        let s0 = hard.script(AppId(0), 0, 2, 0, &cfg);
        let s1 = hard.script(AppId(0), 1, 2, 0, &cfg);
        let dir_of = |s: &[ScriptStep]| match &s[0] {
            ScriptStep::Op(IoOp::Unlink { dir, .. }) => *dir,
            other => panic!("expected unlink, got {other:?}"),
        };
        assert_eq!(dir_of(&s0), dir_of(&s1));
        let easy = MdtPhase::easy_delete();
        let e0 = easy.script(AppId(0), 0, 2, 0, &cfg);
        let e1 = easy.script(AppId(0), 1, 2, 0, &cfg);
        assert_ne!(dir_of(&e0), dir_of(&e1));
    }

    #[test]
    fn mdt_phase_targets_the_write_phases_files() {
        // stat/delete must precreate exactly the files mdtest-hard-write
        // would have created, and only touch those.
        let phase = MdtPhase::hard_stat();
        let pre = phase.precreate(AppId(3), 2, &ClusterConfig::small());
        let files: std::collections::HashSet<_> = pre.iter().map(|p| p.file).collect();
        assert_eq!(files.len(), 2 * phase.files_per_rank as usize);
        for r in 0..2 {
            for step in phase.script(AppId(3), r, 2, 0, &ClusterConfig::small()) {
                if let ScriptStep::Op(IoOp::Stat { file }) = step {
                    assert!(files.contains(&file), "stat of unknown file {file:?}");
                }
            }
        }
    }

    #[test]
    fn mdt_delete_runs_to_completion() {
        let w: Arc<dyn Workload> = Arc::new(MdtPhase {
            files_per_rank: 30,
            ..MdtPhase::hard_delete()
        });
        let trace = run_alone(w, 2);
        let unlinks = trace
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Unlink)
            .count();
        assert_eq!(unlinks, 60);
    }

    #[test]
    fn mdt_tasks_complete() {
        let w: Arc<dyn Workload> = Arc::new(MdtHard {
            files_per_rank: 20,
            ..MdtHard::write()
        });
        let trace = run_alone(w, 2);
        let creates = trace
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Create)
            .count();
        assert_eq!(creates, 40);
    }
}
