//! # qi-workloads
//!
//! Workload generators for the PFS simulator, standing in for the
//! binaries the paper runs: the IO500 suite (IOR + MDTest tasks), the
//! DLIO deep-learning I/O benchmark, and proxies for three real HPC
//! applications (AMReX, Enzo, OpenPMD).
//!
//! Each workload pre-generates a deterministic per-rank script of I/O
//! operations and compute gaps; see [`common::Workload`]. Scripts depend
//! only on `(namespace, rank, seed)` so the same operation sequence is
//! replayed whether or not interference is present — the property the
//! paper's degradation labelling requires.

pub mod apps;
pub mod common;
pub mod dlio;
pub mod io500;
pub mod registry;
pub mod replay;

pub use common::{
    deploy, LoopingProgram, Placement, PrecreateFile, ScriptProgram, ScriptStep, Workload,
};
pub use registry::WorkloadKind;
pub use replay::TraceReplay;
