//! DLIO-style deep-learning I/O workloads (paper §IV-2).
//!
//! DLIO emulates the data-loading behaviour of training jobs. The paper
//! uses two of its configurations:
//!
//! - **Unet3D** — one large sample file per training item (the real
//!   workload reads ~146 MB `.npz` files); every step reads a batch of
//!   whole sample files, then computes. Periodic checkpoints write a
//!   model-sized blob.
//! - **BERT** — records of a few KB read sequentially out of big packed
//!   dataset files (TFRecord-like), with GPU-bound compute between
//!   batches and rare, large checkpoints.
//!
//! Sizes are scaled so an epoch takes seconds of simulated time; the
//! access-pattern contrast (few huge sequential reads vs many tiny reads)
//! is preserved.

use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::IoOp;
use qi_simkit::rng::SimRng;
use qi_simkit::time::SimDuration;

use crate::common::{nsdir, nsfile, Placement, PrecreateFile, ScriptStep, Workload};

/// Base for checkpoint file numbers.
const CKPT_BASE: u64 = 1 << 40;

/// DLIO Unet3D configuration.
#[derive(Clone, Debug)]
pub struct DlioUnet3d {
    /// Sample files in the dataset.
    pub dataset_files: u32,
    /// Bytes per sample file.
    pub sample_bytes: u64,
    /// Training steps per rank.
    pub steps: u32,
    /// Samples read per step (local batch size).
    pub batch: u32,
    /// Compute time per step.
    pub compute: SimDuration,
    /// Steps between checkpoints (0 = never).
    pub ckpt_every: u32,
    /// Bytes written per checkpoint per rank.
    pub ckpt_bytes: u64,
}

impl Default for DlioUnet3d {
    fn default() -> Self {
        DlioUnet3d {
            dataset_files: 64,
            sample_bytes: 8 * 1024 * 1024,
            steps: 40,
            batch: 2,
            compute: SimDuration::from_millis(60),
            ckpt_every: 20,
            ckpt_bytes: 16 * 1024 * 1024,
        }
    }
}

impl Workload for DlioUnet3d {
    fn name(&self) -> String {
        "dlio-unet3d".into()
    }

    fn precreate(&self, ns: AppId, _ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        (0..self.dataset_files)
            .map(|i| PrecreateFile {
                file: nsfile(ns, i as u64),
                len: self.sample_bytes,
                placement: Placement::RoundRobin(None),
            })
            .collect()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let mut rng = SimRng::new(seed).substream(0x03E7 + rank as u64);
        let mut steps = Vec::new();
        for step in 0..self.steps {
            // Random whole-sample reads for this batch.
            for _ in 0..self.batch {
                let file = nsfile(ns, rng.index(self.dataset_files as usize) as u64);
                steps.push(ScriptStep::Op(IoOp::Open { file }));
                // Whole-file read in 1 MiB slices (the data loader streams
                // the sample in).
                let mut off = 0;
                while off < self.sample_bytes {
                    let len = (self.sample_bytes - off).min(1024 * 1024);
                    steps.push(ScriptStep::Op(IoOp::Read {
                        file,
                        offset: off,
                        len,
                    }));
                    off += len;
                }
                steps.push(ScriptStep::Op(IoOp::Close { file }));
            }
            steps.push(ScriptStep::Compute(rng.jittered(self.compute, 0.2)));
            if self.ckpt_every > 0 && (step + 1) % self.ckpt_every == 0 {
                let ck = nsfile(ns, CKPT_BASE + rank as u64 * 1000 + step as u64);
                steps.push(ScriptStep::Op(IoOp::Create {
                    file: ck,
                    dir: nsdir(ns, 1),
                    stripe: None,
                }));
                let mut off = 0;
                while off < self.ckpt_bytes {
                    let len = (self.ckpt_bytes - off).min(4 * 1024 * 1024);
                    steps.push(ScriptStep::Op(IoOp::Write {
                        file: ck,
                        offset: off,
                        len,
                    }));
                    off += len;
                }
                steps.push(ScriptStep::Op(IoOp::Close { file: ck }));
            }
        }
        steps
    }
}

/// DLIO BERT configuration.
#[derive(Clone, Debug)]
pub struct DlioBert {
    /// Packed dataset files.
    pub dataset_files: u32,
    /// Bytes per packed file.
    pub file_bytes: u64,
    /// Record size read per sample.
    pub record_bytes: u64,
    /// Training steps per rank.
    pub steps: u32,
    /// Records per step.
    pub batch: u32,
    /// Compute time per step.
    pub compute: SimDuration,
    /// Steps between checkpoints (0 = never).
    pub ckpt_every: u32,
    /// Bytes written per checkpoint per rank.
    pub ckpt_bytes: u64,
}

impl Default for DlioBert {
    fn default() -> Self {
        DlioBert {
            dataset_files: 8,
            file_bytes: 64 * 1024 * 1024,
            record_bytes: 2_500,
            steps: 400,
            batch: 8,
            compute: SimDuration::from_millis(25),
            ckpt_every: 200,
            ckpt_bytes: 32 * 1024 * 1024,
        }
    }
}

impl Workload for DlioBert {
    fn name(&self) -> String {
        "dlio-bert".into()
    }

    fn precreate(&self, ns: AppId, _ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        (0..self.dataset_files)
            .map(|i| PrecreateFile {
                file: nsfile(ns, i as u64),
                len: self.file_bytes,
                placement: Placement::RoundRobin(None),
            })
            .collect()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        ranks: u32,
        seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let mut rng = SimRng::new(seed).substream(0xBE27 + rank as u64);
        // Each rank walks its own shard of one dataset file sequentially,
        // record by record — the TFRecord reader pattern. The reader is
        // *buffered*: records are consumed from a 1 MiB read-ahead
        // buffer, so the file system only sees one large read per buffer
        // refill (what Darshan records for DLIO's data loaders).
        const READ_BUF: u64 = 1024 * 1024;
        let file = nsfile(ns, (rank % self.dataset_files) as u64);
        // Ranks sharing a file start at staggered shard offsets.
        let sharers = (ranks / self.dataset_files).max(1) as u64;
        let shard = self.file_bytes / sharers;
        let base = (shard * (rank / self.dataset_files) as u64) % self.file_bytes.max(1);
        let mut steps = Vec::new();
        steps.push(ScriptStep::Op(IoOp::Open { file }));
        let mut cursor = base;
        let mut buffered_until = base;
        for step in 0..self.steps {
            for _ in 0..self.batch {
                if cursor + self.record_bytes > self.file_bytes {
                    cursor = 0;
                    buffered_until = 0;
                }
                if cursor + self.record_bytes > buffered_until {
                    let len = READ_BUF.min(self.file_bytes - buffered_until);
                    steps.push(ScriptStep::Op(IoOp::Read {
                        file,
                        offset: buffered_until,
                        len,
                    }));
                    buffered_until += len;
                }
                cursor += self.record_bytes;
            }
            steps.push(ScriptStep::Compute(rng.jittered(self.compute, 0.2)));
            if self.ckpt_every > 0 && (step + 1) % self.ckpt_every == 0 {
                let ck = nsfile(ns, CKPT_BASE + rank as u64 * 1000 + step as u64);
                steps.push(ScriptStep::Op(IoOp::Create {
                    file: ck,
                    dir: nsdir(ns, 1),
                    stripe: None,
                }));
                let mut off = 0;
                while off < self.ckpt_bytes {
                    let len = (self.ckpt_bytes - off).min(4 * 1024 * 1024);
                    steps.push(ScriptStep::Op(IoOp::Write {
                        file: ck,
                        offset: off,
                        len,
                    }));
                    off += len;
                }
                steps.push(ScriptStep::Op(IoOp::Close { file: ck }));
            }
        }
        steps.push(ScriptStep::Op(IoOp::Close { file }));
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy;
    use qi_pfs::cluster::Cluster;
    use qi_pfs::ops::OpKind;
    use qi_simkit::time::SimTime;
    use std::sync::Arc;

    #[test]
    fn unet3d_reads_whole_samples() {
        let w = DlioUnet3d {
            steps: 3,
            batch: 1,
            ckpt_every: 0,
            ..DlioUnet3d::default()
        };
        let s = w.script(AppId(0), 0, 1, 1, &ClusterConfig::small());
        let read_bytes: u64 = s
            .iter()
            .filter_map(|x| match x {
                ScriptStep::Op(IoOp::Read { len, .. }) => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(read_bytes, 3 * w.sample_bytes);
    }

    #[test]
    fn unet3d_script_is_deterministic_per_seed() {
        let w = DlioUnet3d::default();
        let cfg = ClusterConfig::small();
        let a = w.script(AppId(0), 0, 2, 9, &cfg);
        let b = w.script(AppId(0), 0, 2, 9, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (ScriptStep::Op(p), ScriptStep::Op(q)) => assert_eq!(p, q),
                (ScriptStep::Compute(p), ScriptStep::Compute(q)) => assert_eq!(p, q),
                _ => panic!("step shape differs"),
            }
        }
    }

    #[test]
    fn bert_reads_are_buffered_and_sequential() {
        let w = DlioBert {
            steps: 600,
            ckpt_every: 0,
            ..DlioBert::default()
        };
        let s = w.script(AppId(0), 0, 2, 1, &ClusterConfig::small());
        let mut prev_end: Option<u64> = None;
        let mut reads = 0u64;
        for x in &s {
            if let ScriptStep::Op(IoOp::Read { offset, len, .. }) = x {
                // Buffered reader: 1 MiB refills, sequential (wrapping).
                assert_eq!(*len, 1024 * 1024);
                if let Some(end) = prev_end {
                    assert!(*offset == end || *offset == 0, "gap at {offset}");
                }
                prev_end = Some(offset + len);
                reads += 1;
            }
        }
        // One refill per MiB of records consumed, not one read per record.
        let consumed = w.steps as u64 * w.batch as u64 * w.record_bytes;
        let expected = consumed.div_ceil(1024 * 1024);
        assert!(
            reads >= expected && reads <= expected + 2,
            "reads {reads} vs expected ~{expected}"
        );
    }

    #[test]
    fn checkpoints_appear_at_interval() {
        let w = DlioUnet3d {
            steps: 4,
            batch: 1,
            ckpt_every: 2,
            ..DlioUnet3d::default()
        };
        let s = w.script(AppId(0), 0, 1, 1, &ClusterConfig::small());
        let creates = s
            .iter()
            .filter(|x| matches!(x, ScriptStep::Op(IoOp::Create { .. })))
            .count();
        assert_eq!(creates, 2);
    }

    #[test]
    fn both_dlio_workloads_run() {
        for w in [
            Arc::new(DlioUnet3d {
                steps: 4,
                dataset_files: 8,
                sample_bytes: 2 * 1024 * 1024,
                ..DlioUnet3d::default()
            }) as Arc<dyn Workload>,
            Arc::new(DlioBert {
                steps: 20,
                ..DlioBert::default()
            }) as Arc<dyn Workload>,
        ] {
            let mut cl = Cluster::builder()
                .config(ClusterConfig::small())
                .seed(2)
                .build()
                .expect("valid test cluster");
            let nodes = cl.client_nodes();
            let app = deploy(&mut cl, &w, 2, &nodes[..2], 5, false);
            let trace = cl.run_until_app(app, SimTime::from_secs(300));
            assert!(trace.completion_of(app).is_some(), "{}", w.name());
            assert!(trace.ops.iter().any(|o| o.kind == OpKind::Read));
        }
    }
}
