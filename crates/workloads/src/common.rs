//! Workload plumbing: script programs, the [`Workload`] trait, looping
//! interference instances, and cluster deployment.
//!
//! Every workload is described by a type implementing [`Workload`]; it
//! pre-generates a deterministic per-rank *script* (a list of ops and
//! compute gaps). Scripts depend only on `(namespace, rank, seed)`, never
//! on simulated timing, which keeps the op sequence identical between
//! baseline and interfered runs — the property the paper's labelling
//! relies on.

use std::sync::Arc;

use qi_pfs::cluster::Cluster;
use qi_pfs::config::{ClusterConfig, StripeConfig};
use qi_pfs::ids::{AppId, DeviceId, FileKey, NodeId};
use qi_pfs::ops::{IoOp, ProgramStep, RankProgram};
use qi_simkit::time::{SimDuration, SimTime};

/// One step of a pre-generated rank script.
#[derive(Clone, Debug)]
pub enum ScriptStep {
    /// Issue an I/O operation.
    Op(IoOp),
    /// Compute (no I/O) for this long.
    Compute(SimDuration),
}

/// A rank program that replays a fixed script then finishes.
pub struct ScriptProgram {
    steps: Vec<ScriptStep>,
    i: usize,
}

impl ScriptProgram {
    /// Program replaying `steps`.
    pub fn new(steps: Vec<ScriptStep>) -> Self {
        ScriptProgram { steps, i: 0 }
    }

    /// Number of steps in the script.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the script is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl RankProgram for ScriptProgram {
    fn next(&mut self, _now: SimTime) -> ProgramStep {
        match self.steps.get(self.i) {
            Some(step) => {
                self.i += 1;
                match step.clone() {
                    ScriptStep::Op(op) => ProgramStep::Op(op),
                    ScriptStep::Compute(d) => ProgramStep::Compute(d),
                }
            }
            None => ProgramStep::Finished,
        }
    }
}

/// Where a precreated file's data lives.
#[derive(Clone, Debug)]
pub enum Placement {
    /// Round-robin OST assignment with an optional stripe override.
    RoundRobin(Option<StripeConfig>),
    /// Explicit OST list (one entry per stripe).
    Explicit {
        /// Stripe unit in bytes.
        stripe_size: u64,
        /// Target OSTs.
        osts: Vec<DeviceId>,
    },
}

/// A file that must exist (with data) before the workload starts.
#[derive(Clone, Debug)]
pub struct PrecreateFile {
    /// File identity (within the workload's namespace).
    pub file: FileKey,
    /// Logical length in bytes.
    pub len: u64,
    /// Data placement.
    pub placement: Placement,
}

/// A deployable workload: precreated input files plus one script per rank.
pub trait Workload: Send + Sync {
    /// Human-readable workload name (used in tables and app names).
    fn name(&self) -> String;

    /// Files that must exist before the run (e.g. read benchmarks' input).
    fn precreate(&self, ns: AppId, ranks: u32, cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        let _ = (ns, ranks, cfg);
        Vec::new()
    }

    /// Build rank `rank`'s script. Must be deterministic in
    /// `(ns, rank, ranks, seed)` and independent of simulated time.
    fn script(
        &self,
        ns: AppId,
        rank: u32,
        ranks: u32,
        seed: u64,
        cfg: &ClusterConfig,
    ) -> Vec<ScriptStep>;
}

/// A rank program that replays a workload's script forever, regenerating
/// it (with a varied seed) each time it drains — this is how background
/// interference instances are "kept active for the entirety" of a run, as
/// in the paper's Table I methodology.
pub struct LoopingProgram {
    workload: Arc<dyn Workload>,
    ns: AppId,
    rank: u32,
    ranks: u32,
    seed: u64,
    cfg: ClusterConfig,
    iter: u64,
    cur: ScriptProgram,
}

impl LoopingProgram {
    /// Looping replay of `workload`'s rank script.
    pub fn new(
        workload: Arc<dyn Workload>,
        ns: AppId,
        rank: u32,
        ranks: u32,
        seed: u64,
        cfg: ClusterConfig,
    ) -> Self {
        let cur = ScriptProgram::new(workload.script(ns, rank, ranks, seed, &cfg));
        LoopingProgram {
            workload,
            ns,
            rank,
            ranks,
            seed,
            cfg,
            iter: 0,
            cur,
        }
    }
}

impl RankProgram for LoopingProgram {
    fn next(&mut self, now: SimTime) -> ProgramStep {
        match self.cur.next(now) {
            ProgramStep::Finished => {
                self.iter += 1;
                let seed = self.seed.wrapping_add(self.iter.wrapping_mul(0x9E37_79B9));
                self.cur = ScriptProgram::new(
                    self.workload
                        .script(self.ns, self.rank, self.ranks, seed, &self.cfg),
                );
                match self.cur.next(now) {
                    // Guard against an empty script looping at zero cost.
                    ProgramStep::Finished => ProgramStep::Compute(SimDuration::from_millis(100)),
                    step => step,
                }
            }
            step => step,
        }
    }
}

/// A program that computes for `delay` before running its inner program.
/// Used to let interference reach steady state (caches filled, queues
/// deep) before a measured target starts — the paper's Table I keeps
/// interference "active for the entirety" of the measured runs.
pub struct DelayedProgram {
    delay: Option<SimDuration>,
    inner: Box<dyn RankProgram>,
}

impl DelayedProgram {
    /// Delay `inner` by `delay`.
    pub fn new(delay: SimDuration, inner: Box<dyn RankProgram>) -> Self {
        DelayedProgram {
            delay: Some(delay),
            inner,
        }
    }
}

impl RankProgram for DelayedProgram {
    fn next(&mut self, now: SimTime) -> ProgramStep {
        match self.delay.take() {
            Some(d) if d > SimDuration::ZERO => ProgramStep::Compute(d),
            _ => self.inner.next(now),
        }
    }
}

/// Install a workload on the cluster: precreate its inputs and register
/// its ranks as an application on `nodes`. When `looping` is set the
/// ranks replay their scripts forever (interference mode); otherwise the
/// application finishes after one pass (target mode). `start_delay`
/// holds every rank in compute before its first operation.
///
/// Mitigation is NOT deployed here: rate limiting, admission caps, and
/// layout steering are server-side actuators applied through
/// `qi_pfs::cluster::Cluster::apply_directive` (normally by an installed
/// `qi-control` control loop), so workload programs stay
/// timing-independent.
#[allow(clippy::too_many_arguments)]
pub fn deploy_delayed(
    cl: &mut Cluster,
    workload: &Arc<dyn Workload>,
    ranks: u32,
    nodes: &[NodeId],
    seed: u64,
    looping: bool,
    start_delay: SimDuration,
) -> AppId {
    assert!(ranks > 0);
    let ns = cl.next_app_id();
    let cfg = cl.config().clone();
    for pf in workload.precreate(ns, ranks, &cfg) {
        match pf.placement {
            Placement::RoundRobin(stripe) => cl.precreate_file(pf.file, pf.len, stripe),
            Placement::Explicit { stripe_size, osts } => {
                cl.precreate_file_on(pf.file, pf.len, stripe_size, osts)
            }
        }
    }
    let programs: Vec<Box<dyn RankProgram>> = (0..ranks)
        .map(|r| -> Box<dyn RankProgram> {
            let inner: Box<dyn RankProgram> = if looping {
                Box::new(LoopingProgram::new(
                    Arc::clone(workload),
                    ns,
                    r,
                    ranks,
                    seed,
                    cfg.clone(),
                ))
            } else {
                Box::new(ScriptProgram::new(
                    workload.script(ns, r, ranks, seed, &cfg),
                ))
            };
            if start_delay > SimDuration::ZERO {
                Box::new(DelayedProgram::new(start_delay, inner))
            } else {
                inner
            }
        })
        .collect();
    let app = cl.add_app(&workload.name(), programs, nodes);
    debug_assert_eq!(app, ns, "namespace/app id mismatch");
    app
}

/// [`deploy_delayed`] with no start delay.
pub fn deploy(
    cl: &mut Cluster,
    workload: &Arc<dyn Workload>,
    ranks: u32,
    nodes: &[NodeId],
    seed: u64,
    looping: bool,
) -> AppId {
    deploy_delayed(cl, workload, ranks, nodes, seed, looping, SimDuration::ZERO)
}

/// File key helper within a namespace.
pub fn nsfile(ns: AppId, num: u64) -> FileKey {
    FileKey { app: ns, num }
}

/// Directory key helper within a namespace.
pub fn nsdir(ns: AppId, num: u64) -> qi_pfs::ids::DirKey {
    qi_pfs::ids::DirKey { app: ns, num }
}

/// All OSTs of a cluster configuration, for wide striping.
pub fn all_osts(cfg: &ClusterConfig) -> Vec<DeviceId> {
    (0..cfg.n_osts()).map(DeviceId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoWrites;
    impl Workload for TwoWrites {
        fn name(&self) -> String {
            "two-writes".into()
        }
        fn script(
            &self,
            ns: AppId,
            rank: u32,
            _ranks: u32,
            _seed: u64,
            _cfg: &ClusterConfig,
        ) -> Vec<ScriptStep> {
            (0..2)
                .map(|i| {
                    ScriptStep::Op(IoOp::Write {
                        file: nsfile(ns, rank as u64),
                        offset: i * 4096,
                        len: 4096,
                    })
                })
                .collect()
        }
    }

    #[test]
    fn script_program_replays_then_finishes() {
        let mut p = ScriptProgram::new(vec![
            ScriptStep::Compute(SimDuration::from_millis(1)),
            ScriptStep::Op(IoOp::Stat {
                file: nsfile(AppId(0), 0),
            }),
        ]);
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Compute(_)));
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Op(_)));
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Finished));
        assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Finished));
    }

    #[test]
    fn looping_program_regenerates() {
        let w: Arc<dyn Workload> = Arc::new(TwoWrites);
        let cfg = ClusterConfig::small();
        let mut p = LoopingProgram::new(Arc::clone(&w), AppId(0), 0, 1, 1, cfg);
        // 2 ops, then the loop regenerates: never Finished.
        for _ in 0..10 {
            assert!(matches!(p.next(SimTime::ZERO), ProgramStep::Op(_)));
        }
    }

    #[test]
    fn deploy_runs_target_to_completion() {
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(5)
            .build()
            .expect("valid test cluster");
        let w: Arc<dyn Workload> = Arc::new(TwoWrites);
        let nodes = cl.client_nodes();
        let app = deploy(&mut cl, &w, 2, &nodes[..2], 7, false);
        let trace = cl.run_until_app(app, SimTime::from_secs(10));
        assert!(trace.completion_of(app).is_some());
        assert_eq!(trace.ops.len(), 4); // 2 ranks × 2 writes
    }

    #[test]
    fn deploy_looping_never_completes() {
        let mut cl = Cluster::builder()
            .config(ClusterConfig::small())
            .seed(5)
            .build()
            .expect("valid test cluster");
        let w: Arc<dyn Workload> = Arc::new(TwoWrites);
        let nodes = cl.client_nodes();
        let app = deploy(&mut cl, &w, 1, &nodes[..1], 7, true);
        let trace = cl.run(SimTime::from_millis(500));
        assert!(trace.completion_of(app).is_none());
        assert!(trace.ops.len() > 4, "looping app kept issuing ops");
    }
}
