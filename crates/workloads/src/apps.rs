//! Proxies for the paper's three real HPC applications (§IV-2):
//!
//! - **AMReX** — block-structured AMR: long compute phases punctuated by
//!   plotfile dumps, where every rank creates a file in a shared per-step
//!   directory and writes its patch data in multi-MB chunks.
//!   Data-intensive, bursty.
//! - **Enzo** — cosmology/collapse simulation: the first ~50 s mix reads,
//!   writes, opens, closes, and stats (exactly the op mix the paper's
//!   Figure 1 shows), with hierarchy dumps of many small writes plus a
//!   few larger ones.
//! - **OpenPMD** — metadata standard tooling: series output dominated by
//!   file creates, small dataset writes, and stats. Metadata-intensive.
//!
//! These are *pattern* proxies: phase structure, op mix, and size
//! distributions follow published descriptions of each code's I/O, which
//! is the only property the paper's framework consumes.

use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::IoOp;
use qi_simkit::rng::SimRng;
use qi_simkit::time::SimDuration;

use crate::common::{nsdir, nsfile, Placement, PrecreateFile, ScriptStep, Workload};

/// AMReX proxy: compute + periodic plotfile dumps.
#[derive(Clone, Debug)]
pub struct AmrexProxy {
    /// Simulation cycles per rank.
    pub cycles: u32,
    /// Cycles between plotfile dumps.
    pub plot_every: u32,
    /// Compute time per cycle.
    pub compute: SimDuration,
    /// Bytes each rank writes per dump.
    pub dump_bytes: u64,
    /// Write chunk size during dumps.
    pub chunk: u64,
}

impl Default for AmrexProxy {
    fn default() -> Self {
        AmrexProxy {
            cycles: 12,
            plot_every: 3,
            compute: SimDuration::from_millis(300),
            dump_bytes: 48 * 1024 * 1024,
            chunk: 4 * 1024 * 1024,
        }
    }
}

impl Workload for AmrexProxy {
    fn name(&self) -> String {
        "amrex".into()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let mut rng = SimRng::new(seed).substream(0xA3E + rank as u64);
        let mut steps = Vec::new();
        let mut dump_no = 0u64;
        for cycle in 0..self.cycles {
            steps.push(ScriptStep::Compute(rng.jittered(self.compute, 0.25)));
            if (cycle + 1) % self.plot_every == 0 {
                // Shared per-step directory: every rank creates its own
                // file in it (the Header/Level_x/Cell_D layout).
                let dir = nsdir(ns, 1000 + dump_no);
                let file = nsfile(ns, dump_no * 1_000_000 + rank as u64);
                if rank == 0 {
                    steps.push(ScriptStep::Op(IoOp::Mkdir { dir }));
                }
                steps.push(ScriptStep::Op(IoOp::Create {
                    file,
                    dir,
                    stripe: None,
                }));
                let mut off = 0;
                while off < self.dump_bytes {
                    let len = (self.dump_bytes - off).min(self.chunk);
                    steps.push(ScriptStep::Op(IoOp::Write {
                        file,
                        offset: off,
                        len,
                    }));
                    off += len;
                }
                steps.push(ScriptStep::Op(IoOp::Close { file }));
                dump_no += 1;
            }
        }
        steps
    }
}

/// Enzo proxy: the mixed read/write/open/close/stat phase structure of a
/// collapse-test run's opening minute.
#[derive(Clone, Debug)]
pub struct EnzoProxy {
    /// Simulation cycles per rank.
    pub cycles: u32,
    /// Compute time per cycle.
    pub compute: SimDuration,
    /// Bytes of initial conditions read per rank at startup.
    pub ic_bytes: u64,
    /// Cycles between hierarchy dumps.
    pub dump_every: u32,
    /// Small writes per hierarchy dump.
    pub dump_small_writes: u32,
}

impl Default for EnzoProxy {
    fn default() -> Self {
        EnzoProxy {
            cycles: 30,
            compute: SimDuration::from_millis(120),
            ic_bytes: 32 * 1024 * 1024,
            dump_every: 5,
            dump_small_writes: 12,
        }
    }
}

impl Workload for EnzoProxy {
    fn name(&self) -> String {
        "enzo".into()
    }

    fn precreate(&self, ns: AppId, ranks: u32, _cfg: &ClusterConfig) -> Vec<PrecreateFile> {
        // Initial-conditions file per rank.
        (0..ranks)
            .map(|r| PrecreateFile {
                file: nsfile(ns, r as u64),
                len: self.ic_bytes,
                placement: Placement::RoundRobin(None),
            })
            .collect()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let mut rng = SimRng::new(seed).substream(0xE7_20 + rank as u64);
        let ic = nsfile(ns, rank as u64);
        let mut steps = Vec::new();
        // Startup: read the initial conditions in 1 MiB slices, with the
        // occasional stat (parameter-file checks).
        steps.push(ScriptStep::Op(IoOp::Open { file: ic }));
        let mut off = 0;
        while off < self.ic_bytes {
            let len = (self.ic_bytes - off).min(1024 * 1024);
            steps.push(ScriptStep::Op(IoOp::Read {
                file: ic,
                offset: off,
                len,
            }));
            if rng.chance(0.2) {
                steps.push(ScriptStep::Op(IoOp::Stat { file: ic }));
            }
            off += len;
        }
        steps.push(ScriptStep::Op(IoOp::Close { file: ic }));
        // Evolution loop.
        let mut dump_no = 0u64;
        for cycle in 0..self.cycles {
            steps.push(ScriptStep::Compute(rng.jittered(self.compute, 0.3)));
            // Per-cycle bookkeeping: a stat and sometimes a re-read of a
            // boundary slab.
            steps.push(ScriptStep::Op(IoOp::Stat { file: ic }));
            if rng.chance(0.4) {
                let slab = rng.range_u64(0, (self.ic_bytes / (256 * 1024)).max(1));
                steps.push(ScriptStep::Op(IoOp::Read {
                    file: ic,
                    offset: slab * 256 * 1024,
                    len: 256 * 1024,
                }));
            }
            if (cycle + 1) % self.dump_every == 0 {
                // Hierarchy dump: one grid file per rank per dump with
                // many small writes and one bigger field write.
                let dir = nsdir(ns, 2000 + dump_no);
                let file = nsfile(ns, 1_000_000 + dump_no * 1_000 + rank as u64);
                if rank == 0 {
                    steps.push(ScriptStep::Op(IoOp::Mkdir { dir }));
                }
                steps.push(ScriptStep::Op(IoOp::Create {
                    file,
                    dir,
                    stripe: None,
                }));
                let mut woff = 0u64;
                for _ in 0..self.dump_small_writes {
                    let len = rng.range_u64(16 * 1024, 96 * 1024);
                    steps.push(ScriptStep::Op(IoOp::Write {
                        file,
                        offset: woff,
                        len,
                    }));
                    woff += len;
                }
                let big = rng.range_u64(1, 4) * 1024 * 1024;
                steps.push(ScriptStep::Op(IoOp::Write {
                    file,
                    offset: woff,
                    len: big,
                }));
                steps.push(ScriptStep::Op(IoOp::Close { file }));
                dump_no += 1;
            }
        }
        steps
    }
}

/// OpenPMD proxy: metadata-heavy series output.
#[derive(Clone, Debug)]
pub struct OpenPmdProxy {
    /// Output iterations per rank.
    pub iterations: u32,
    /// Datasets (files) created per iteration per rank.
    pub datasets_per_iter: u32,
    /// Bytes written per dataset.
    pub dataset_bytes: u64,
    /// Compute time between iterations.
    pub compute: SimDuration,
}

impl Default for OpenPmdProxy {
    fn default() -> Self {
        OpenPmdProxy {
            iterations: 15,
            datasets_per_iter: 10,
            dataset_bytes: 64 * 1024,
            compute: SimDuration::from_millis(80),
        }
    }
}

impl Workload for OpenPmdProxy {
    fn name(&self) -> String {
        "openpmd".into()
    }

    fn script(
        &self,
        ns: AppId,
        rank: u32,
        _ranks: u32,
        seed: u64,
        _cfg: &ClusterConfig,
    ) -> Vec<ScriptStep> {
        let mut rng = SimRng::new(seed).substream(0x09D + rank as u64);
        let series_dir = nsdir(ns, 0); // shared series directory
        let mut steps = Vec::new();
        for it in 0..self.iterations {
            steps.push(ScriptStep::Compute(rng.jittered(self.compute, 0.2)));
            for d in 0..self.datasets_per_iter {
                let file = nsfile(ns, (it as u64) * 1_000_000 + rank as u64 * 1_000 + d as u64);
                steps.push(ScriptStep::Op(IoOp::Create {
                    file,
                    dir: series_dir,
                    stripe: None,
                }));
                steps.push(ScriptStep::Op(IoOp::Write {
                    file,
                    offset: 0,
                    len: self.dataset_bytes,
                }));
                steps.push(ScriptStep::Op(IoOp::Stat { file }));
                steps.push(ScriptStep::Op(IoOp::Close { file }));
            }
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy;
    use qi_pfs::cluster::Cluster;
    use qi_pfs::ops::OpKind;
    use qi_simkit::time::SimTime;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn enzo_mixes_all_five_op_kinds() {
        let w = EnzoProxy::default();
        let s = w.script(AppId(0), 0, 2, 3, &ClusterConfig::small());
        let kinds: HashSet<OpKind> = s
            .iter()
            .filter_map(|x| match x {
                ScriptStep::Op(op) => Some(op.kind()),
                _ => None,
            })
            .collect();
        for k in [
            OpKind::Read,
            OpKind::Write,
            OpKind::Open,
            OpKind::Close,
            OpKind::Stat,
        ] {
            assert!(kinds.contains(&k), "enzo proxy missing {k:?}");
        }
    }

    #[test]
    fn openpmd_is_metadata_dominated() {
        let w = OpenPmdProxy::default();
        let s = w.script(AppId(0), 0, 2, 3, &ClusterConfig::small());
        let (meta, data) = s.iter().fold((0u32, 0u32), |(m, d), x| match x {
            ScriptStep::Op(op) if op.kind().is_meta() => (m + 1, d),
            ScriptStep::Op(_) => (m, d + 1),
            _ => (m, d),
        });
        assert!(meta > 2 * data, "meta {meta} data {data}");
    }

    #[test]
    fn amrex_is_data_dominated_by_bytes() {
        let w = AmrexProxy::default();
        let s = w.script(AppId(0), 0, 2, 3, &ClusterConfig::small());
        let bytes: u64 = s
            .iter()
            .filter_map(|x| match x {
                ScriptStep::Op(op) => Some(op.bytes()),
                _ => None,
            })
            .sum();
        let dumps = (w.cycles / w.plot_every) as u64;
        assert_eq!(bytes, dumps * w.dump_bytes);
    }

    #[test]
    fn proxies_run_to_completion() {
        let workloads: Vec<Arc<dyn Workload>> = vec![
            Arc::new(AmrexProxy {
                cycles: 4,
                plot_every: 2,
                dump_bytes: 8 * 1024 * 1024,
                ..AmrexProxy::default()
            }),
            Arc::new(EnzoProxy {
                cycles: 6,
                ic_bytes: 4 * 1024 * 1024,
                ..EnzoProxy::default()
            }),
            Arc::new(OpenPmdProxy {
                iterations: 4,
                ..OpenPmdProxy::default()
            }),
        ];
        for w in workloads {
            let mut cl = Cluster::builder()
                .config(ClusterConfig::small())
                .seed(8)
                .build()
                .expect("valid test cluster");
            let nodes = cl.client_nodes();
            let app = deploy(&mut cl, &w, 2, &nodes[..2], 5, false);
            let trace = cl.run_until_app(app, SimTime::from_secs(300));
            assert!(trace.completion_of(app).is_some(), "{} stuck", w.name());
            assert!(!trace.ops.is_empty());
        }
    }

    #[test]
    fn scripts_differ_between_ranks_but_not_runs() {
        let w = EnzoProxy::default();
        let cfg = ClusterConfig::small();
        let a0 = w.script(AppId(0), 0, 2, 3, &cfg);
        let a0b = w.script(AppId(0), 0, 2, 3, &cfg);
        let a1 = w.script(AppId(0), 1, 2, 3, &cfg);
        assert_eq!(a0.len(), a0b.len());
        // Rank 1 has a different rng stream → different small-read picks.
        let reads = |s: &[ScriptStep]| -> Vec<u64> {
            s.iter()
                .filter_map(|x| match x {
                    ScriptStep::Op(IoOp::Read { offset, .. }) => Some(*offset),
                    _ => None,
                })
                .collect()
        };
        assert_ne!(reads(&a0), reads(&a1));
    }
}
