//! Property-based tests over the workload generators.

use proptest::prelude::*;
use qi_pfs::config::ClusterConfig;
use qi_pfs::ids::AppId;
use qi_pfs::ops::IoOp;
use qi_workloads::common::ScriptStep;
use qi_workloads::registry::WorkloadKind;

fn all_kinds() -> Vec<WorkloadKind> {
    WorkloadKind::IO500
        .into_iter()
        .chain(WorkloadKind::DLIO)
        .chain(WorkloadKind::APPS)
        .chain(WorkloadKind::IO500_EXTENDED)
        .collect()
}

fn script_of(kind: WorkloadKind, ns: u32, rank: u32, ranks: u32, seed: u64) -> Vec<ScriptStep> {
    kind.build_small()
        .script(AppId(ns), rank, ranks, seed, &ClusterConfig::small())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Scripts are pure functions of (ns, rank, ranks, seed).
    #[test]
    fn scripts_are_deterministic(
        kind_idx in 0usize..16,
        rank in 0u32..4,
        ranks in 1u32..5,
        seed in 0u64..1000,
    ) {
        let kind = all_kinds()[kind_idx];
        let rank = rank % ranks;
        let a = script_of(kind, 0, rank, ranks, seed);
        let b = script_of(kind, 0, rank, ranks, seed);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (ScriptStep::Op(p), ScriptStep::Op(q)) => prop_assert_eq!(p, q),
                (ScriptStep::Compute(p), ScriptStep::Compute(q)) => prop_assert_eq!(p, q),
                _ => prop_assert!(false, "step shape differs"),
            }
        }
    }

    /// Every operation a script issues stays inside its own namespace —
    /// no workload can touch another application's files.
    #[test]
    fn scripts_stay_in_their_namespace(
        kind_idx in 0usize..16,
        ns in 0u32..8,
        seed in 0u64..500,
    ) {
        let kind = all_kinds()[kind_idx];
        let app = AppId(ns);
        for step in script_of(kind, ns, 0, 2, seed) {
            if let ScriptStep::Op(op) = step {
                let file_app = match &op {
                    IoOp::Read { file, .. }
                    | IoOp::Write { file, .. }
                    | IoOp::Open { file }
                    | IoOp::Stat { file }
                    | IoOp::Close { file }
                    | IoOp::Unlink { file, .. }
                    | IoOp::Create { file, .. } => Some(file.app),
                    IoOp::Mkdir { .. } => None,
                };
                if let Some(a) = file_app {
                    prop_assert_eq!(a, app);
                }
                if let IoOp::Create { dir, .. } | IoOp::Unlink { dir, .. } = &op {
                    prop_assert_eq!(dir.app, app);
                }
                if let IoOp::Mkdir { dir } = &op {
                    prop_assert_eq!(dir.app, app);
                }
            }
        }
    }

    /// All data operations have positive length and metadata ops carry
    /// no payload.
    #[test]
    fn op_payloads_are_sane(kind_idx in 0usize..16, seed in 0u64..500) {
        let kind = all_kinds()[kind_idx];
        for step in script_of(kind, 1, 0, 2, seed) {
            if let ScriptStep::Op(op) = step {
                if op.kind().is_data() {
                    prop_assert!(op.bytes() > 0, "{:?} zero-length data op", op.kind());
                } else {
                    prop_assert_eq!(op.bytes(), 0);
                }
            }
        }
    }

    /// ior-hard offsets never overlap across ranks, for any rank count.
    #[test]
    fn ior_hard_is_conflict_free(ranks in 1u32..9, seed in 0u64..100) {
        let kind = WorkloadKind::IorHardWrite;
        let mut seen = std::collections::HashSet::new();
        for r in 0..ranks {
            for step in script_of(kind, 0, r, ranks, seed) {
                if let ScriptStep::Op(IoOp::Write { offset, len, .. }) = step {
                    prop_assert!(seen.insert(offset), "offset {} reused", offset);
                    prop_assert_eq!(len, qi_workloads::io500::IOR_HARD_XFER);
                }
            }
        }
    }

    /// Precreated inputs always cover what read-type scripts consume:
    /// every read targets a precreated file within its length.
    #[test]
    fn reads_are_backed_by_precreated_data(
        kind_idx in prop::sample::select(vec![0usize, 1, 2]), // the three read tasks
        ranks in 1u32..5,
        seed in 0u64..200,
    ) {
        let kind = WorkloadKind::IO500[kind_idx];
        let w = kind.build_small();
        let cfg = ClusterConfig::small();
        let pre: std::collections::HashMap<_, _> = w
            .precreate(AppId(0), ranks, &cfg)
            .into_iter()
            .map(|p| (p.file, p.len))
            .collect();
        for r in 0..ranks {
            for step in w.script(AppId(0), r, ranks, seed, &cfg) {
                if let ScriptStep::Op(IoOp::Read { file, offset, len }) = step {
                    let flen = pre.get(&file).copied();
                    prop_assert!(flen.is_some(), "read of unprecreated file {:?}", file);
                    prop_assert!(
                        offset + len <= flen.expect("present"),
                        "read past EOF: {}+{} > {:?}",
                        offset,
                        len,
                        flen
                    );
                }
            }
        }
    }

    /// Looping interference never finishes: the program keeps yielding
    /// steps far beyond one script length.
    #[test]
    fn looping_programs_never_finish(kind_idx in 0usize..7, seed in 0u64..50) {
        use qi_pfs::ops::{ProgramStep, RankProgram};
        use qi_workloads::common::LoopingProgram;
        let kind = WorkloadKind::IO500[kind_idx];
        let w = kind.build_small();
        let one_pass = w
            .script(AppId(0), 0, 2, seed, &ClusterConfig::small())
            .len();
        let mut p = LoopingProgram::new(
            kind.build_small(),
            AppId(0),
            0,
            2,
            seed,
            ClusterConfig::small(),
        );
        for i in 0..(one_pass * 2 + 10) {
            let step = p.next(qi_simkit::SimTime::ZERO);
            prop_assert!(
                !matches!(step, ProgramStep::Finished),
                "looping program finished at step {}",
                i
            );
        }
    }
}
