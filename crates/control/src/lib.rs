//! # qi-control
//!
//! The closed loop the paper's framework exists for: *predict
//! cross-application interference online, then act on the prediction
//! while the applications are still running* (§V). Everything upstream
//! of this crate — the deterministic cluster simulator (`qi-pfs`), the
//! one-path feature pipeline (`qi-monitor`), the trained interference
//! classifiers (`qi-ml`), and the micro-batching serve engine
//! (`qi-serve`) — feeds a single in-simulation controller that turns
//! window-boundary predictions into typed mitigation directives.
//!
//! The pieces, in dataflow order:
//!
//! - [`policy`] — [`MitigationPolicy`]: per-window decision functions
//!   from predictions to *desired* posture. [`GuidedThrottle`] throttles
//!   the noise applications only while the target's predicted severity
//!   is hot (optionally also capping their per-OST admitted RPCs and
//!   steering new file layouts away from predicted-hot OSTs);
//!   [`UniformThrottle`] is the always-on baseline the guided policy
//!   must beat on background-throughput cost.
//! - [`gate`] — [`HysteresisGate`]: debounces posture flips
//!   ([`Hysteresis`] streak lengths), swallows post-flip flip attempts
//!   (cooldown), deduplicates already-applied directives, and resolves
//!   engage/release conflicts (engage wins). Its output never contains
//!   conflicting directives for one subject in one window — a property
//!   the determinism suite tests exhaustively.
//! - [`controller`] — [`ControlLoop`]: the
//!   [`ClusterController`](qi_pfs::control::ClusterController) the
//!   cluster ticks once per closed window. It ingests trace deltas into
//!   the *same* [`FeaturePipeline`](qi_monitor::FeaturePipeline) that
//!   built the training data, submits one request per active app to a
//!   [`PredictService`](qi_serve::PredictService) (single or sharded
//!   engine), and pushes the gated directives back to the cluster,
//!   which applies them through
//!   [`Cluster::apply_directive`](qi_pfs::cluster::Cluster::apply_directive).
//!
//! Determinism argument: ticks fire at window close + 1 ns in simulated
//! time; ingest order is the canonical samples → RPCs → ops merge; the
//! pipeline watermark never passes the tick's window boundary;
//! predictions are flushed within the tick and sorted by (window,
//! tenant); policies and the gate are pure state machines over those
//! inputs. The directive sequence — recorded verbatim in
//! [`RunTrace::directives`](qi_pfs::ops::RunTrace) — is therefore a
//! pure function of the run and byte-identical across reruns and rayon
//! thread counts.
//!
//! Under the parallel simulator (`ClusterConfig::sim_shards > 1`) the
//! tick instants are additionally pinned to epoch boundaries: the
//! cluster inserts mini-epoch barriers at every window close and at
//! close + 1 ns, so a tick always runs after every delivery up to the
//! close has materialised and merged, and the directives it emits reach
//! every shard's admission-cap replica before any later shard event
//! executes. Controlled runs are therefore bit-identical at any shard
//! count too (DESIGN.md, "Parallel simulation").

#![forbid(unsafe_code)]

pub mod controller;
pub mod gate;
pub mod policy;

pub use controller::{ControlLoop, ControlLoopBuilder};
pub use gate::{GateStats, Hysteresis, HysteresisGate};
pub use policy::{GuidedThrottle, MitigationPolicy, UniformThrottle, WindowObservation};
