//! Mitigation policies: per-window decisions from predictions to
//! desired actuation.
//!
//! A [`MitigationPolicy`] is a pure decision function — it states the
//! *desired* posture for every subject it manages, every window, and
//! never worries about flapping: the [hysteresis gate](crate::gate)
//! between policy and cluster decides which desires actually turn into
//! directives. The two built-ins replace the retired free functions:
//! [`GuidedThrottle`] is the prediction-guided controller (throttle the
//! noise apps only while the target's predicted severity is at or above
//! a threshold), [`UniformThrottle`] the always-on baseline.

use qi_pfs::control::ControlDirective;
use qi_pfs::ids::{AppId, DeviceId};
use qi_serve::Prediction;
use qi_simkit::error::QiError;
use qi_simkit::time::SimTime;

/// Everything a policy sees at one control tick.
pub struct WindowObservation<'a> {
    /// The window that just closed.
    pub window: u64,
    /// The tick instant (window close + 1 ns).
    pub now: SimTime,
    /// This window's predictions, ascending by tenant id. Empty when
    /// the loop runs without a predictor, or when no app was active.
    pub predictions: &'a [Prediction],
}

/// A mitigation policy: called once per closed window with that
/// window's predictions; pushes the *desired* directives (full posture,
/// engage or clear, for every subject it manages) into `out`. The
/// hysteresis gate downstream deduplicates, debounces, and resolves
/// conflicts — policies stay stateless about what is currently applied.
pub trait MitigationPolicy: Send {
    /// Short stable name, used in errors and telemetry.
    fn name(&self) -> &'static str;

    /// Whether the policy consumes model predictions.
    /// [`ControlLoop::builder`](crate::ControlLoop::builder) requires a
    /// predictor when true.
    fn needs_predictions(&self) -> bool {
        true
    }

    /// State the desired posture for this window.
    fn decide(&mut self, obs: &WindowObservation<'_>, out: &mut Vec<ControlDirective>);
}

/// Prediction-guided throttling: while the target's predicted severity
/// bin is ≥ `min_class`, rate-limit every noise app (optionally also
/// capping its per-OST admitted RPCs and steering new layouts away from
/// a hot OST set); otherwise desire everything cleared.
pub struct GuidedThrottle {
    target: AppId,
    noise: Vec<AppId>,
    min_class: usize,
    bytes_per_sec: f64,
    cap_inflight: Option<u32>,
    avoid_osts: Option<Vec<DeviceId>>,
}

impl GuidedThrottle {
    /// Throttle `noise` apps to `bytes_per_sec` whenever `target`'s
    /// predicted class is ≥ `min_class`. Fails on an empty noise set or
    /// a rate that is not finite and positive.
    pub fn new(
        target: AppId,
        noise: Vec<AppId>,
        min_class: usize,
        bytes_per_sec: f64,
    ) -> Result<Self, QiError> {
        if noise.is_empty() {
            return Err(QiError::Control(
                "guided throttle needs at least one noise app".into(),
            ));
        }
        if noise.contains(&target) {
            return Err(QiError::Control(format!(
                "guided throttle cannot throttle its own target (app {})",
                target.0
            )));
        }
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return Err(QiError::Control(format!(
                "throttle rate must be finite and positive, got {bytes_per_sec}"
            )));
        }
        Ok(GuidedThrottle {
            target,
            noise,
            min_class,
            bytes_per_sec,
            cap_inflight: None,
            avoid_osts: None,
        })
    }

    /// Also cap each noise app to `max_inflight` admitted data RPCs per
    /// OST while engaged.
    pub fn with_inflight_cap(mut self, max_inflight: u32) -> Result<Self, QiError> {
        if max_inflight == 0 {
            return Err(QiError::Control("inflight cap must be >= 1".into()));
        }
        self.cap_inflight = Some(max_inflight);
        Ok(self)
    }

    /// Also steer newly created layouts away from `osts` while engaged
    /// (predicted-hot servers).
    pub fn with_retarget(mut self, osts: Vec<DeviceId>) -> Result<Self, QiError> {
        if osts.is_empty() {
            return Err(QiError::Control(
                "retargeting needs a non-empty OST set to avoid".into(),
            ));
        }
        self.avoid_osts = Some(osts);
        Ok(self)
    }
}

impl MitigationPolicy for GuidedThrottle {
    fn name(&self) -> &'static str {
        "guided-throttle"
    }

    fn decide(&mut self, obs: &WindowObservation<'_>, out: &mut Vec<ControlDirective>) {
        let hot = obs
            .predictions
            .iter()
            .find(|p| p.tenant == self.target)
            .is_some_and(|p| p.class >= self.min_class);
        for &app in &self.noise {
            if hot {
                out.push(ControlDirective::RateLimit {
                    app,
                    bytes_per_sec: self.bytes_per_sec,
                });
                if let Some(cap) = self.cap_inflight {
                    out.push(ControlDirective::CapInflight {
                        app,
                        max_inflight: cap,
                    });
                }
            } else {
                out.push(ControlDirective::ClearRateLimit { app });
                if self.cap_inflight.is_some() {
                    out.push(ControlDirective::ClearCapInflight { app });
                }
            }
        }
        if let Some(osts) = &self.avoid_osts {
            if hot {
                out.push(ControlDirective::AvoidOsts { osts: osts.clone() });
            } else {
                out.push(ControlDirective::ClearAvoidOsts);
            }
        }
    }
}

/// The uniform baseline: rate-limit every noise app from the first
/// window, predictions unseen. What the guided policy must beat on
/// background-throughput cost.
pub struct UniformThrottle {
    noise: Vec<AppId>,
    bytes_per_sec: f64,
}

impl UniformThrottle {
    /// Throttle `noise` apps to `bytes_per_sec`, always. Fails on an
    /// empty noise set or a rate that is not finite and positive.
    pub fn new(noise: Vec<AppId>, bytes_per_sec: f64) -> Result<Self, QiError> {
        if noise.is_empty() {
            return Err(QiError::Control(
                "uniform throttle needs at least one noise app".into(),
            ));
        }
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return Err(QiError::Control(format!(
                "throttle rate must be finite and positive, got {bytes_per_sec}"
            )));
        }
        Ok(UniformThrottle {
            noise,
            bytes_per_sec,
        })
    }
}

impl MitigationPolicy for UniformThrottle {
    fn name(&self) -> &'static str {
        "uniform-throttle"
    }

    fn needs_predictions(&self) -> bool {
        false
    }

    fn decide(&mut self, _obs: &WindowObservation<'_>, out: &mut Vec<ControlDirective>) {
        for &app in &self.noise {
            out.push(ControlDirective::RateLimit {
                app,
                bytes_per_sec: self.bytes_per_sec,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_simkit::time::SimDuration;

    fn pred(tenant: u32, window: u64, class: usize) -> Prediction {
        Prediction {
            tenant: AppId(tenant),
            window,
            class,
            queued: SimDuration::ZERO,
            batch: 1,
            done_at: SimTime::ZERO,
            version: 1,
        }
    }

    #[test]
    fn guided_constructor_validates() {
        assert!(GuidedThrottle::new(AppId(0), vec![], 1, 1e6).is_err());
        assert!(GuidedThrottle::new(AppId(0), vec![AppId(0)], 1, 1e6).is_err());
        assert!(GuidedThrottle::new(AppId(0), vec![AppId(1)], 1, 0.0).is_err());
        assert!(GuidedThrottle::new(AppId(0), vec![AppId(1)], 1, f64::NAN).is_err());
        let p = GuidedThrottle::new(AppId(0), vec![AppId(1)], 1, 1e6).expect("valid");
        assert!(p.with_inflight_cap(0).is_err());
        let p = GuidedThrottle::new(AppId(0), vec![AppId(1)], 1, 1e6).expect("valid");
        assert!(p.with_retarget(vec![]).is_err());
    }

    #[test]
    fn guided_engages_on_hot_prediction_only() {
        let mut p = GuidedThrottle::new(AppId(0), vec![AppId(1), AppId(2)], 2, 5e6).expect("valid");
        let mut out = Vec::new();
        let hot = [pred(0, 3, 2)];
        p.decide(
            &WindowObservation {
                window: 3,
                now: SimTime::from_secs(4),
                predictions: &hot,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.is_engage()));

        out.clear();
        let cool = [pred(0, 4, 1)];
        p.decide(
            &WindowObservation {
                window: 4,
                now: SimTime::from_secs(5),
                predictions: &cool,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| !d.is_engage()));

        // No prediction for the target at all → same as cool.
        out.clear();
        p.decide(
            &WindowObservation {
                window: 5,
                now: SimTime::from_secs(6),
                predictions: &[],
            },
            &mut out,
        );
        assert!(out.iter().all(|d| !d.is_engage()));
    }

    #[test]
    fn uniform_always_desires_throttling() {
        let mut p = UniformThrottle::new(vec![AppId(1)], 1e6).expect("valid");
        assert!(!p.needs_predictions());
        let mut out = Vec::new();
        p.decide(
            &WindowObservation {
                window: 0,
                now: SimTime::from_secs(1),
                predictions: &[],
            },
            &mut out,
        );
        assert_eq!(
            out,
            vec![ControlDirective::RateLimit {
                app: AppId(1),
                bytes_per_sec: 1e6
            }]
        );
    }
}
