//! The hysteresis gate between policy desire and cluster actuation.
//!
//! Policies restate their *desired* posture every window; the gate
//! decides which desires become directives. It deduplicates (an engage
//! identical to what is already applied emits nothing), debounces
//! (posture flips need `engage_windows` / `release_windows` consecutive
//! desires), enforces a cooldown after every flip (the next
//! `cooldown_windows` flip attempts in the opposite direction are
//! swallowed), and resolves conflicts (a policy desiring both engage
//! and release for one subject in one window: engage wins). The
//! emitted stream therefore never contains an engage and a release for
//! the same subject in the same window, and never a release for a
//! subject that is not engaged — the determinism suite property-tests
//! exactly this.

use std::collections::BTreeMap;

use qi_pfs::control::ControlDirective;
use qi_simkit::error::QiError;

/// Debounce configuration for the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hysteresis {
    /// Consecutive engage desires needed before a subject engages.
    pub engage_windows: u32,
    /// Consecutive release desires needed before a subject releases.
    pub release_windows: u32,
    /// After a posture flip, how many flip attempts in the opposite
    /// direction are swallowed before the streak counter may run.
    pub cooldown_windows: u32,
}

impl Default for Hysteresis {
    /// Engage on the first hot window, release after two cool ones,
    /// swallow two flip attempts after each transition.
    fn default() -> Self {
        Hysteresis {
            engage_windows: 1,
            release_windows: 2,
            cooldown_windows: 2,
        }
    }
}

/// What the gate is keyed on: each engage/clear directive pair gets its
/// own debounce state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Subject {
    /// `RateLimit`/`ClearRateLimit` for one app.
    Rate(u32),
    /// `CapInflight`/`ClearCapInflight` for one app.
    Cap(u32),
    /// `AvoidOsts`/`ClearAvoidOsts` (cluster-global).
    Layout,
}

fn subject_of(d: &ControlDirective) -> Subject {
    match d {
        ControlDirective::RateLimit { app, .. } | ControlDirective::ClearRateLimit { app } => {
            Subject::Rate(app.0)
        }
        ControlDirective::CapInflight { app, .. } | ControlDirective::ClearCapInflight { app } => {
            Subject::Cap(app.0)
        }
        ControlDirective::AvoidOsts { .. } | ControlDirective::ClearAvoidOsts => Subject::Layout,
    }
}

#[derive(Default)]
struct SubjectState {
    engaged: bool,
    streak_engage: u32,
    streak_release: u32,
    cooldown_left: u32,
    active: Option<ControlDirective>,
}

/// Counters describing everything the gate did, folded into the
/// controller's telemetry.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct GateStats {
    /// Posture flips to engaged.
    pub engages: u64,
    /// Posture flips to released.
    pub releases: u64,
    /// Parameter changes emitted while already engaged.
    pub updates: u64,
    /// Flip desires swallowed because the streak was still short.
    pub suppressed_hysteresis: u64,
    /// Flip desires swallowed by a post-flip cooldown.
    pub suppressed_cooldown: u64,
    /// Windows in which a policy desired both engage and release for
    /// one subject (engage won).
    pub conflicts: u64,
}

/// The stateful gate. Feed it one window's desired directives at a
/// time via [`filter`](HysteresisGate::filter).
pub struct HysteresisGate {
    cfg: Hysteresis,
    states: BTreeMap<Subject, SubjectState>,
    stats: GateStats,
}

impl HysteresisGate {
    /// Build a gate; fails if either streak length is zero (the gate
    /// could then never change posture).
    pub fn new(cfg: Hysteresis) -> Result<Self, QiError> {
        if cfg.engage_windows == 0 || cfg.release_windows == 0 {
            return Err(QiError::Control(format!(
                "hysteresis streaks must be >= 1 window (engage {}, release {})",
                cfg.engage_windows, cfg.release_windows
            )));
        }
        Ok(HysteresisGate {
            cfg,
            states: BTreeMap::new(),
            stats: GateStats::default(),
        })
    }

    /// The configuration the gate runs with.
    pub fn config(&self) -> Hysteresis {
        self.cfg
    }

    /// Cumulative gate counters.
    pub fn stats(&self) -> GateStats {
        self.stats
    }

    /// Pass one window's desired directives through the gate, appending
    /// the survivors to `out` in the order they were desired.
    pub fn filter(&mut self, desired: &[ControlDirective], out: &mut Vec<ControlDirective>) {
        // Conflict pre-pass: engage wins over release per subject, and
        // only the first directive per subject is processed.
        let mut posture: BTreeMap<Subject, (bool, bool)> = BTreeMap::new();
        for d in desired {
            let e = posture.entry(subject_of(d)).or_insert((false, false));
            if d.is_engage() {
                e.0 = true;
            } else {
                e.1 = true;
            }
        }
        for (&subj, &(eng, rel)) in &posture {
            if eng && rel {
                self.stats.conflicts += 1;
                let _ = subj;
            }
        }

        let mut done: Vec<Subject> = Vec::new();
        for d in desired {
            let subj = subject_of(d);
            let (eng, rel) = posture[&subj];
            if eng && rel && !d.is_engage() {
                continue; // engage wins; drop the conflicting release
            }
            if done.contains(&subj) {
                continue; // one decision per subject per window
            }
            done.push(subj);
            self.step(subj, d, out);
        }
    }

    fn step(&mut self, subj: Subject, d: &ControlDirective, out: &mut Vec<ControlDirective>) {
        let st = self.states.entry(subj).or_default();
        if d.is_engage() {
            if st.engaged {
                st.streak_release = 0;
                if st.active.as_ref() != Some(d) {
                    st.active = Some(d.clone());
                    self.stats.updates += 1;
                    out.push(d.clone());
                }
            } else if st.cooldown_left > 0 {
                st.cooldown_left -= 1;
                self.stats.suppressed_cooldown += 1;
            } else {
                st.streak_engage += 1;
                st.streak_release = 0;
                if st.streak_engage >= self.cfg.engage_windows {
                    st.engaged = true;
                    st.streak_engage = 0;
                    st.active = Some(d.clone());
                    st.cooldown_left = self.cfg.cooldown_windows;
                    self.stats.engages += 1;
                    out.push(d.clone());
                } else {
                    self.stats.suppressed_hysteresis += 1;
                }
            }
        } else if !st.engaged {
            st.streak_engage = 0; // nothing active: drop silently
        } else if st.cooldown_left > 0 {
            st.cooldown_left -= 1;
            self.stats.suppressed_cooldown += 1;
        } else {
            st.streak_release += 1;
            st.streak_engage = 0;
            if st.streak_release >= self.cfg.release_windows {
                st.engaged = false;
                st.streak_release = 0;
                st.active = None;
                st.cooldown_left = self.cfg.cooldown_windows;
                self.stats.releases += 1;
                out.push(d.clone());
            } else {
                self.stats.suppressed_hysteresis += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_pfs::ids::AppId;

    fn rate(app: u32, r: f64) -> ControlDirective {
        ControlDirective::RateLimit {
            app: AppId(app),
            bytes_per_sec: r,
        }
    }

    fn clear(app: u32) -> ControlDirective {
        ControlDirective::ClearRateLimit { app: AppId(app) }
    }

    #[test]
    fn rejects_zero_streaks() {
        assert!(HysteresisGate::new(Hysteresis {
            engage_windows: 0,
            release_windows: 1,
            cooldown_windows: 0,
        })
        .is_err());
        assert!(HysteresisGate::new(Hysteresis {
            engage_windows: 1,
            release_windows: 0,
            cooldown_windows: 0,
        })
        .is_err());
    }

    #[test]
    fn dedupes_and_debounces() {
        let mut g = HysteresisGate::new(Hysteresis {
            engage_windows: 2,
            release_windows: 2,
            cooldown_windows: 0,
        })
        .expect("valid");
        let mut out = Vec::new();

        g.filter(&[rate(1, 1e6)], &mut out);
        assert!(out.is_empty(), "first desire debounced");
        g.filter(&[rate(1, 1e6)], &mut out);
        assert_eq!(out, vec![rate(1, 1e6)], "second consecutive engages");

        out.clear();
        g.filter(&[rate(1, 1e6)], &mut out);
        assert!(out.is_empty(), "identical re-desire deduped");
        g.filter(&[rate(1, 2e6)], &mut out);
        assert_eq!(out, vec![rate(1, 2e6)], "parameter change is an update");

        out.clear();
        g.filter(&[clear(1)], &mut out);
        assert!(out.is_empty(), "first release debounced");
        g.filter(&[clear(1)], &mut out);
        assert_eq!(out, vec![clear(1)]);

        let s = g.stats();
        assert_eq!(s.engages, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.updates, 1);
        assert_eq!(s.suppressed_hysteresis, 2);
    }

    #[test]
    fn release_without_engagement_is_silent() {
        let mut g = HysteresisGate::new(Hysteresis::default()).expect("valid");
        let mut out = Vec::new();
        g.filter(&[clear(3)], &mut out);
        g.filter(&[clear(3)], &mut out);
        g.filter(&[clear(3)], &mut out);
        assert!(out.is_empty());
        assert_eq!(g.stats(), GateStats::default());
    }

    #[test]
    fn cooldown_swallows_exactly_n_flip_attempts() {
        let mut g = HysteresisGate::new(Hysteresis {
            engage_windows: 1,
            release_windows: 1,
            cooldown_windows: 2,
        })
        .expect("valid");
        let mut out = Vec::new();

        g.filter(&[rate(0, 1e6)], &mut out);
        assert_eq!(out.len(), 1, "engages immediately");

        // Two release desires swallowed by the post-engage cooldown,
        // the third flips.
        out.clear();
        g.filter(&[clear(0)], &mut out);
        g.filter(&[clear(0)], &mut out);
        assert!(out.is_empty());
        assert_eq!(g.stats().suppressed_cooldown, 2);
        g.filter(&[clear(0)], &mut out);
        assert_eq!(out, vec![clear(0)]);
    }

    #[test]
    fn conflict_engage_wins() {
        let mut g = HysteresisGate::new(Hysteresis {
            engage_windows: 1,
            release_windows: 1,
            cooldown_windows: 0,
        })
        .expect("valid");
        let mut out = Vec::new();
        g.filter(&[clear(5), rate(5, 1e6)], &mut out);
        assert_eq!(out, vec![rate(5, 1e6)]);
        assert_eq!(g.stats().conflicts, 1);
        assert_eq!(g.stats().releases, 0);
    }
}
