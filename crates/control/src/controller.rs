//! The online control loop: trace deltas → features → predictions →
//! policy → gate → directives, once per closed window.
//!
//! [`ControlLoop`] implements [`ClusterController`], so the cluster
//! calls [`on_window`](ClusterController::on_window) at every window
//! close (1 ns after the boundary — after the boundary's own events,
//! before anything from the next window). Each tick:
//!
//! 1. **Ingest** every trace event the simulator appended since the
//!    last tick whose event time is at or before the closed window's
//!    boundary `B`, in the canonical merge order (samples → RPCs → ops
//!    at equal times), then [`FeaturePipeline::advance_to`]`(B)` so the
//!    window closes even if it was quiet. Events past `B` (already
//!    recorded because the tick itself runs 1 ns later) stay for the
//!    next tick — the pipeline watermark never passes the boundary.
//! 2. **Predict**: each emitted window yields one request per active
//!    app (ascending app id, exactly like the offline replay driver),
//!    submitted to the attached [`PredictService`] at the tick instant,
//!    then flushed with `finish` so every admitted request is answered
//!    within the tick.
//! 3. **Decide**: the policy states its desired posture from the
//!    closed window's predictions (sorted by window then tenant).
//! 4. **Gate**: hysteresis/cooldown filters the desires into the
//!    directives the cluster will apply.
//!
//! Everything is driven by simulated time and deterministic inputs, so
//! the directive sequence is a pure function of the run — byte-identical
//! across reruns and thread counts (locked in by the determinism suite).

use qi_monitor::{FeaturePipeline, WindowConfig};
use qi_pfs::control::{ClusterController, ControlDirective};
use qi_pfs::ops::RunTrace;
use qi_serve::{Admission, PredictRequest, PredictService, Prediction};
use qi_simkit::error::QiError;
use qi_simkit::time::{SimDuration, SimTime};
use qi_telemetry::{MetricId, MetricValue, MetricsSnapshot, Registry};

use crate::gate::{GateStats, Hysteresis, HysteresisGate};
use crate::policy::{MitigationPolicy, WindowObservation};

/// All directive labels, for up-front counter registration (stable
/// snapshot key sets).
const DIRECTIVE_LABELS: [&str; 6] = [
    "rate_limit",
    "clear_rate_limit",
    "cap_inflight",
    "clear_cap_inflight",
    "avoid_osts",
    "clear_avoid_osts",
];

#[derive(Clone, Copy)]
struct Ids {
    ticks: MetricId,
    windows: MetricId,
    requests: MetricId,
    predictions: MetricId,
    stale: MetricId,
    shed: MetricId,
    errors: MetricId,
    desired: MetricId,
    emitted: MetricId,
    desired_per_tick: MetricId,
    emitted_per_tick: MetricId,
    directive: [MetricId; 6],
}

/// The prediction-guided mitigation controller. Build one with
/// [`ControlLoop::builder`] and hand it to
/// [`Cluster::install_controller`](qi_pfs::cluster::Cluster::install_controller).
pub struct ControlLoop {
    wcfg: WindowConfig,
    pipeline: Option<FeaturePipeline>,
    predictor: Option<Box<dyn PredictService + Send>>,
    policy: Box<dyn MitigationPolicy>,
    gate: HysteresisGate,
    cur_op: usize,
    cur_rpc: usize,
    cur_sample: usize,
    desired: Vec<ControlDirective>,
    reg: Registry,
    ids: Ids,
}

impl ControlLoop {
    /// Start configuring a control loop.
    pub fn builder() -> ControlLoopBuilder {
        ControlLoopBuilder {
            predictor: None,
            policy: None,
            hysteresis: Hysteresis::default(),
            n_devices: None,
            window: None,
        }
    }

    /// The window configuration the loop ticks on.
    pub fn window_config(&self) -> WindowConfig {
        self.wcfg
    }

    /// Cumulative hysteresis-gate counters.
    pub fn gate_stats(&self) -> GateStats {
        self.gate.stats()
    }

    /// Ingest trace deltas up to `bound` and run them through the
    /// pipeline and predictor; appends every prediction answered this
    /// tick to `preds`.
    fn observe(
        &mut self,
        now: SimTime,
        bound: SimTime,
        trace: &RunTrace,
        preds: &mut Vec<Prediction>,
    ) -> Result<(), QiError> {
        let Some(pipeline) = self.pipeline.as_mut() else {
            return Ok(());
        };
        let predictor = self
            .predictor
            .as_mut()
            .expect("a pipeline is only built alongside a predictor");
        // The tick runs 1 ns after the boundary, so the trace may
        // already hold events past `bound` (their events carried a
        // lower sequence number than the tick's). Ingest only up to the
        // boundary; each stream is time-sorted, so a partition point
        // splits it exactly.
        let ops = &trace.ops[self.cur_op..];
        let ops = &ops[..ops.partition_point(|o| o.completed <= bound)];
        let rpcs = &trace.rpcs[self.cur_rpc..];
        let rpcs = &rpcs[..rpcs.partition_point(|r| r.issued <= bound)];
        // The sample store may be a bounded ring; read it through the
        // logical-index accessor, which resumes exactly where the last
        // tick stopped regardless of representation.
        let samples: Vec<_> = trace
            .samples
            .iter_from(self.cur_sample as u64)
            .take_while(|s| s.time <= bound)
            .collect();
        let samples = &samples[..];
        self.cur_op += ops.len();
        self.cur_rpc += rpcs.len();
        self.cur_sample += samples.len();

        let mut ready = Vec::new();
        let (mut oi, mut ri, mut si) = (0usize, 0usize, 0usize);
        loop {
            let t_op = ops.get(oi).map(|o| o.completed);
            let t_rpc = rpcs.get(ri).map(|r| r.issued);
            let t_smp = samples.get(si).map(|s| s.time);
            let Some(next) = [t_smp, t_rpc, t_op].into_iter().flatten().min() else {
                break;
            };
            if t_smp == Some(next) {
                ready.extend(pipeline.push_sample(&samples[si])?);
                si += 1;
            } else if t_rpc == Some(next) {
                ready.extend(pipeline.push_rpc(&rpcs[ri])?);
                ri += 1;
            } else {
                ready.extend(pipeline.push_op(&ops[oi])?);
                oi += 1;
            }
        }
        ready.extend(pipeline.advance_to(bound)?);

        for ew in &ready {
            self.reg.inc(self.ids.windows);
            for (app, block, _avail) in pipeline.feature_blocks(ew) {
                self.reg.inc(self.ids.requests);
                let req = PredictRequest {
                    tenant: app,
                    window: ew.window,
                    block,
                };
                let (admission, done) = predictor.submit(now, req)?;
                preds.extend(done);
                match admission {
                    Admission::Enqueued => {}
                    Admission::Stale(_) => self.reg.inc(self.ids.stale),
                    Admission::Shed => self.reg.inc(self.ids.shed),
                }
            }
        }
        // Flush within the tick so decisions never wait on a half-full
        // batch: every admitted request is answered before the policy
        // runs.
        preds.extend(predictor.finish(now)?);
        Ok(())
    }
}

impl ClusterController for ControlLoop {
    fn interval(&self) -> SimDuration {
        self.wcfg.window
    }

    fn on_window(
        &mut self,
        now: SimTime,
        window: u64,
        trace: &RunTrace,
        out: &mut Vec<ControlDirective>,
    ) {
        self.reg.inc(self.ids.ticks);
        let bound = self.wcfg.start_of(window + 1);
        let mut preds: Vec<Prediction> = Vec::new();
        if self.observe(now, bound, trace, &mut preds).is_err() {
            // A serving/pipeline failure must not stall the simulation:
            // count it and decide from whatever arrived (possibly
            // nothing — guided policies treat that as cool).
            self.reg.inc(self.ids.errors);
        }
        self.reg.add(self.ids.predictions, preds.len() as u64);
        preds.sort_by_key(|p| (p.window, p.tenant.0));
        let this_window: Vec<Prediction> =
            preds.into_iter().filter(|p| p.window == window).collect();

        self.desired.clear();
        let obs = WindowObservation {
            window,
            now,
            predictions: &this_window,
        };
        self.policy.decide(&obs, &mut self.desired);
        self.reg.add(self.ids.desired, self.desired.len() as u64);
        self.reg
            .observe(self.ids.desired_per_tick, self.desired.len() as f64);

        let before = out.len();
        self.gate.filter(&self.desired, out);
        let emitted = &out[before..];
        self.reg.add(self.ids.emitted, emitted.len() as u64);
        self.reg
            .observe(self.ids.emitted_per_tick, emitted.len() as f64);
        for d in emitted {
            let i = DIRECTIVE_LABELS
                .iter()
                .position(|&l| l == d.label())
                .expect("every directive label is registered");
            self.reg.inc(self.ids.directive[i]);
        }
    }

    fn metrics_into(&self, snap: &mut MetricsSnapshot) {
        snap.absorb("", &self.reg.snapshot());
        let s = self.gate.stats();
        snap.put("control.gate.engages", MetricValue::Counter(s.engages));
        snap.put("control.gate.releases", MetricValue::Counter(s.releases));
        snap.put("control.gate.updates", MetricValue::Counter(s.updates));
        snap.put(
            "control.gate.suppressed_hysteresis",
            MetricValue::Counter(s.suppressed_hysteresis),
        );
        snap.put(
            "control.gate.suppressed_cooldown",
            MetricValue::Counter(s.suppressed_cooldown),
        );
        snap.put("control.gate.conflicts", MetricValue::Counter(s.conflicts));
    }
}

/// Fluent configuration for [`ControlLoop`]; every invalid combination
/// is rejected by [`build`](ControlLoopBuilder::build) with a
/// [`QiError::Control`].
pub struct ControlLoopBuilder {
    predictor: Option<Box<dyn PredictService + Send>>,
    policy: Option<Box<dyn MitigationPolicy>>,
    hysteresis: Hysteresis,
    n_devices: Option<u32>,
    window: Option<WindowConfig>,
}

impl ControlLoopBuilder {
    /// Attach the prediction service the loop consults each window. The
    /// loop's window/feature configuration is derived from the
    /// service's registry schema — the same guarantee the offline
    /// replay driver gives: serving can never disagree with training.
    pub fn predictor(mut self, service: impl PredictService + Send + 'static) -> Self {
        self.predictor = Some(Box::new(service));
        self
    }

    /// Set the mitigation policy (required).
    pub fn policy(mut self, policy: impl MitigationPolicy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Override the default hysteresis/cooldown configuration.
    pub fn hysteresis(mut self, h: Hysteresis) -> Self {
        self.hysteresis = h;
        self
    }

    /// Number of OSTs in the cluster (required with a predictor: it
    /// fixes the feature-block width, exactly as in training).
    pub fn n_devices(mut self, n: u32) -> Self {
        self.n_devices = Some(n);
        self
    }

    /// Tick interval for a predictor-less loop. With a predictor the
    /// window comes from its schema; setting a conflicting one here is
    /// an error.
    pub fn window(mut self, wcfg: WindowConfig) -> Self {
        self.window = Some(wcfg);
        self
    }

    /// Validate and assemble the loop.
    pub fn build(self) -> Result<ControlLoop, QiError> {
        let policy = self
            .policy
            .ok_or_else(|| QiError::Control("control loop built without a policy".into()))?;
        if policy.needs_predictions() && self.predictor.is_none() {
            return Err(QiError::Control(format!(
                "policy `{}` consumes predictions but no predictor was attached",
                policy.name()
            )));
        }
        let (wcfg, pipeline) = match &self.predictor {
            Some(service) => {
                let schema = service.registry().expected_schema();
                let wcfg = schema.window_config().ok_or_else(|| {
                    QiError::Control(format!(
                        "predictor schema [{schema}] has no window length; \
                         the loop cannot derive its tick interval"
                    ))
                })?;
                if let Some(explicit) = self.window {
                    if explicit != wcfg {
                        return Err(QiError::Control(format!(
                            "explicit window {:?} conflicts with the predictor \
                             schema's window {:?}",
                            explicit.window, wcfg.window
                        )));
                    }
                }
                let n_devices = self.n_devices.ok_or_else(|| {
                    QiError::Control(
                        "a predictor-driven loop needs n_devices(..) to size feature blocks".into(),
                    )
                })?;
                let fcfg = schema.feature_config();
                (wcfg, Some(FeaturePipeline::new(wcfg, fcfg, n_devices)))
            }
            None => {
                let wcfg = self.window.ok_or_else(|| {
                    QiError::Control(
                        "a predictor-less loop needs an explicit window(..) tick interval".into(),
                    )
                })?;
                (wcfg, None)
            }
        };
        if wcfg.window == SimDuration::ZERO {
            return Err(QiError::Control(
                "control window must be a positive duration".into(),
            ));
        }
        let gate = HysteresisGate::new(self.hysteresis)?;

        let mut reg = Registry::new();
        let ids = Ids {
            ticks: reg.counter("control.ticks"),
            windows: reg.counter("control.windows"),
            requests: reg.counter("control.requests"),
            predictions: reg.counter("control.predictions"),
            stale: reg.counter("control.stale"),
            shed: reg.counter("control.shed"),
            errors: reg.counter("control.errors"),
            desired: reg.counter("control.desired"),
            emitted: reg.counter("control.emitted"),
            desired_per_tick: reg.histogram("control.desired_per_tick", 0.0, 16.0, 16),
            emitted_per_tick: reg.histogram("control.emitted_per_tick", 0.0, 16.0, 16),
            directive: DIRECTIVE_LABELS.map(|l| reg.counter(&format!("control.directive.{l}"))),
        };

        Ok(ControlLoop {
            wcfg,
            pipeline,
            predictor: self.predictor,
            policy,
            gate,
            cur_op: 0,
            cur_rpc: 0,
            cur_sample: 0,
            desired: Vec::new(),
            reg,
            ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::UniformThrottle;
    use qi_pfs::ids::AppId;

    fn assert_send<T: Send>() {}

    fn build_err(b: ControlLoopBuilder) -> QiError {
        match b.build() {
            Err(e) => e,
            Ok(_) => panic!("expected the build to fail"),
        }
    }

    #[test]
    fn control_loop_is_send() {
        // The cluster owns the controller across a run; the sharded
        // serve engine must ride along.
        assert_send::<ControlLoop>();
        assert_send::<qi_serve::ShardedServeEngine>();
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        let err = build_err(ControlLoop::builder());
        assert!(err.to_string().contains("without a policy"), "{err}");

        let uniform = || UniformThrottle::new(vec![AppId(1)], 1e6).expect("valid");
        let err = build_err(ControlLoop::builder().policy(uniform()));
        assert!(err.to_string().contains("window"), "{err}");

        let err = build_err(
            ControlLoop::builder()
                .policy(uniform())
                .window(WindowConfig {
                    window: SimDuration::ZERO,
                }),
        );
        assert!(err.to_string().contains("positive"), "{err}");

        let err = build_err(
            ControlLoop::builder()
                .policy(uniform())
                .window(WindowConfig::seconds(1))
                .hysteresis(Hysteresis {
                    engage_windows: 0,
                    release_windows: 1,
                    cooldown_windows: 0,
                }),
        );
        assert!(err.to_string().contains("hysteresis"), "{err}");
    }

    #[test]
    fn guided_policy_requires_a_predictor() {
        let guided = crate::policy::GuidedThrottle::new(AppId(0), vec![AppId(1)], 1, 1e6)
            .expect("valid policy");
        let err = build_err(
            ControlLoop::builder()
                .policy(guided)
                .window(WindowConfig::seconds(1)),
        );
        assert!(err.to_string().contains("no predictor"), "{err}");
    }

    #[test]
    fn predictorless_loop_decides_every_window() {
        let mut ctl = ControlLoop::builder()
            .policy(UniformThrottle::new(vec![AppId(2)], 2e6).expect("valid"))
            .window(WindowConfig::seconds(1))
            .build()
            .expect("valid loop");
        assert_eq!(ctl.interval(), SimDuration::from_secs(1));
        assert_eq!(ctl.window_config(), WindowConfig::seconds(1));

        let trace = RunTrace::default();
        let mut out = Vec::new();
        let tick = SimTime(SimDuration::from_secs(1).as_nanos() + 1);
        ctl.on_window(tick, 0, &trace, &mut out);
        assert_eq!(
            out,
            vec![ControlDirective::RateLimit {
                app: AppId(2),
                bytes_per_sec: 2e6
            }]
        );

        // Window 1: same desire, already applied → deduped.
        out.clear();
        ctl.on_window(
            SimTime(2 * SimDuration::from_secs(1).as_nanos() + 1),
            1,
            &trace,
            &mut out,
        );
        assert!(out.is_empty());

        let mut snap = MetricsSnapshot::new();
        ctl.metrics_into(&mut snap);
        assert_eq!(snap.counter("control.ticks"), Some(2));
        assert_eq!(snap.counter("control.desired"), Some(2));
        assert_eq!(snap.counter("control.emitted"), Some(1));
        assert_eq!(snap.counter("control.directive.rate_limit"), Some(1));
        assert_eq!(snap.counter("control.gate.engages"), Some(1));
        assert_eq!(snap.counter("control.errors"), Some(0));
    }
}
