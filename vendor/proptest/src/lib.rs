//! Offline drop-in replacement for the subset of the `proptest` API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors this stub as a path dependency.
//!
//! Differences from upstream, by design:
//!
//! - **Generation only, no shrinking.** A failing case panics with the
//!   case number; inputs are reproducible because the per-test RNG is
//!   seeded from the test's name, so case `n` of `my_test` is the same
//!   on every run and every machine.
//! - **Deterministic.** No entropy sources at all — the whole point of
//!   this workspace is byte-stable reproducibility.
//! - Strategy surface limited to what the suite uses: numeric ranges,
//!   tuples (arity ≤ 6), `collection::vec`, `bool::ANY`,
//!   `sample::select`, char-class string patterns (`"[a-z]{0,12}"`),
//!   `Just`, and `.prop_map`.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Per-suite configuration. Only `cases` matters in this shim; the
    /// other fields exist so upstream-style functional update syntax
    /// (`.. ProptestConfig::default()`) keeps compiling.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; `prop_assume` rejections just skip.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_global_rejects: 1024,
            }
        }
    }

    /// Failure raised by `prop_assert*` macros inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test generator (splitmix64 → xorshift mix).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (the property's name).
        pub fn deterministic(tag: &str) -> Self {
            // FNV-1a over the tag gives a stable, well-spread seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in tag.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Unbiased integer in `[0, n)`.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            let zone = u64::MAX - (u64::MAX - n + 1) % n;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % n;
                }
            }
        }

        /// Uniform f64 in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree and no shrinking:
    /// `generate` directly produces one value from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate an intermediate value, then generate from the
        /// strategy `f` builds out of it (dependent strategies, e.g. a
        /// random dimension followed by a vector of that length).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A);
    impl_tuple!(A, B);
    impl_tuple!(A, B, C);
    impl_tuple!(A, B, C, D);
    impl_tuple!(A, B, C, D, E);
    impl_tuple!(A, B, C, D, E, F);

    /// `&str` patterns act as generators for a tiny regex subset:
    /// one char class with a repetition count — `"[a-z0-9 ,\"]{0,12}"`,
    /// `"[abc]{3}"` — or, failing to parse as that, the literal string.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_char_class_pattern(self) {
                Some((chars, lo, hi)) if !chars.is_empty() => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    /// Parse `[class]{lo,hi}` / `[class]{n}` into (alphabet, lo, hi).
    fn parse_char_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                // `\"` inside the source literal reaches us as a bare quote.
                if class[i] != '\\' {
                    chars.push(class[i]);
                }
                i += 1;
            }
        }
        let reps = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_string();
        let (lo, hi) = match reps.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly select one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair coin strategy (`proptest::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Upstream-style `prop::` namespace (`prop::collection::vec`, …).
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&strategies, &mut rng);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at deterministic case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure reports the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {:?} != {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            // No rejection bookkeeping in the shim: just pass the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn char_class_pattern_generates_within_alphabet() {
        let mut rng = TestRng::deterministic("alpha");
        let strat = "[a-c0-1]{2,5}";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            assert!(s.chars().all(|c| "abc01".contains(c)), "bad char in {s}");
        }
    }

    #[test]
    fn non_pattern_string_is_literal() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!("hello".generate(&mut rng), "hello");
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::deterministic("vec");
        let strat = prop::collection::vec(0u64..10, 3..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v.len() >= 3 && v.len() < 7);
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = prop::collection::vec(0u64..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

        /// The macro itself: args bind, asserts work, tuples compose.
        #[test]
        fn macro_end_to_end(
            a in 0u32..10,
            pair in (0usize..3, prop::bool::ANY),
            s in prop::sample::select(vec![1i64, 2, 3]),
        ) {
            prop_assert!(a < 10);
            prop_assert!(pair.0 < 3, "pair.0 {} out of range", pair.0);
            prop_assert_eq!(s, s);
            prop_assert_ne!(s, s + 1);
        }
    }
}
