//! Parallel-iterator plumbing over index-chunkable sources.
//!
//! Everything funnels through the [`Chunked`] trait: a source knows its
//! length and can split itself into contiguous chunks, each an ordinary
//! sequential iterator tagged with its starting index. Adapters
//! ([`Map`], [`Enumerate`]) wrap the chunks; terminals (`for_each`,
//! `collect`) hand the chunk list to the pool's injector and — for
//! `collect` — gather per-chunk outputs into **index-keyed slots**,
//! stitching them in chunk order afterwards. That makes every
//! `.collect()` byte-identical to the sequential run regardless of
//! thread count or scheduling: worker identity can never reorder
//! results.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::pool;

/// A splittable, exactly-sized source of `Send` items.
pub trait Chunked: Send + Sized {
    /// Item produced by the source.
    type Item: Send;
    /// Sequential iterator over one contiguous chunk.
    type Chunk: Iterator<Item = Self::Item> + Send;

    /// Total number of items.
    fn total_len(&self) -> usize;

    /// Split into at most `n` contiguous chunks, in index order; each
    /// entry is `(start_index, chunk)`.
    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)>;
}

/// Balanced contiguous index ranges: first `len % n` ranges get one
/// extra element. Deterministic in `len` and `n` only.
fn chunk_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, len.max(1));
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let sz = base + usize::from(i < rem);
        if sz == 0 {
            break;
        }
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// How many chunks a terminal should split into: enough oversplit that
/// chunk stealing balances uneven item costs, without per-item cursor
/// traffic.
fn chunk_count(len: usize, threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        len.min(threads.saturating_mul(4))
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// `par_iter` over a slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> Chunked for SliceSource<'a, T> {
    type Item = &'a T;
    type Chunk = std::slice::Iter<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len()
    }

    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)> {
        chunk_ranges(self.slice.len(), n)
            .into_iter()
            .map(|(s, e)| (s, self.slice[s..e].iter()))
            .collect()
    }
}

/// `par_iter_mut` over a slice.
pub struct SliceMutSource<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send + 'a> Chunked for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    type Chunk = std::slice::IterMut<'a, T>;

    fn total_len(&self) -> usize {
        self.slice.len()
    }

    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)> {
        let ranges = chunk_ranges(self.slice.len(), n);
        let mut rest = self.slice;
        let mut out = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            let (head, tail) = rest.split_at_mut(e - s);
            out.push((s, head.iter_mut()));
            rest = tail;
        }
        out
    }
}

/// Owning source: `into_par_iter` over a `Vec` (also the backbone for
/// `par_chunks_mut` and `HashMap` iteration, which pre-collect their
/// items).
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Send> Chunked for VecSource<T> {
    type Item = T;
    type Chunk = std::vec::IntoIter<T>;

    fn total_len(&self) -> usize {
        self.items.len()
    }

    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)> {
        let ranges = chunk_ranges(self.items.len(), n);
        let mut items = self.items;
        // Peel chunks off the back so each `split_off` moves only one
        // chunk's elements (O(len) total).
        let mut out: Vec<(usize, Self::Chunk)> = Vec::with_capacity(ranges.len());
        for &(s, _) in ranges.iter().rev() {
            let tail = items.split_off(s);
            out.push((s, tail.into_iter()));
        }
        out.reverse();
        out
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Chunk iterator applying a shared mapping closure.
pub struct MapChunk<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, O, F> Iterator for MapChunk<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> O,
{
    type Item = O;

    fn next(&mut self) -> Option<O> {
        self.inner.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Lazy `map` over a chunked source.
pub struct Map<C, F> {
    base: C,
    f: Arc<F>,
}

impl<C, O, F> Chunked for Map<C, F>
where
    C: Chunked,
    O: Send,
    F: Fn(C::Item) -> O + Send + Sync,
{
    type Item = O;
    type Chunk = MapChunk<C::Chunk, F>;

    fn total_len(&self) -> usize {
        self.base.total_len()
    }

    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)> {
        let f = self.f;
        self.base
            .split(n)
            .into_iter()
            .map(|(s, chunk)| {
                (
                    s,
                    MapChunk {
                        inner: chunk,
                        f: Arc::clone(&f),
                    },
                )
            })
            .collect()
    }
}

/// Chunk iterator pairing items with their global index.
pub struct EnumerateChunk<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateChunk<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Lazy `enumerate` over a chunked source; indices are global (chunk
/// start + offset), independent of the split.
pub struct Enumerate<C> {
    base: C,
}

impl<C: Chunked> Chunked for Enumerate<C> {
    type Item = (usize, C::Item);
    type Chunk = EnumerateChunk<C::Chunk>;

    fn total_len(&self) -> usize {
        self.base.total_len()
    }

    fn split(self, n: usize) -> Vec<(usize, Self::Chunk)> {
        self.base
            .split(n)
            .into_iter()
            .map(|(s, chunk)| {
                (
                    s,
                    EnumerateChunk {
                        inner: chunk,
                        next: s,
                    },
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The ParallelIterator interface
// ---------------------------------------------------------------------------

/// Consumer/adapter methods available on every chunked source, mirroring
/// the `rayon::prelude::ParallelIterator` subset this workspace uses.
pub trait ParallelIterator: Chunked {
    /// Number of items this iterator will produce.
    fn len(&self) -> usize {
        self.total_len()
    }

    /// True when there are no items.
    fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Apply `f` to every item.
    fn map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Send,
        F: Fn(Self::Item) -> O + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pair every item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Run `f` on every item, in parallel across chunks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let n_chunks = chunk_count(self.total_len(), pool::current_num_threads());
        let chunks = self.split(n_chunks);
        pool::run_chunks(chunks, |_idx, (_start, chunk)| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Collect all items, **in source order**, into any `FromIterator`
    /// collection. Per-chunk outputs land in index-keyed slots and are
    /// stitched sequentially, so the result is identical to the
    /// sequential collect for every thread count.
    fn collect<B>(self) -> B
    where
        B: FromIterator<Self::Item>,
    {
        let n_chunks = chunk_count(self.total_len(), pool::current_num_threads());
        let chunks = self.split(n_chunks);
        if chunks.len() <= 1 || pool::current_num_threads() <= 1 {
            return chunks.into_iter().flat_map(|(_, c)| c).collect();
        }
        let slots: Vec<Mutex<Option<Vec<Self::Item>>>> =
            (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        pool::run_chunks(chunks, |idx, (_start, chunk)| {
            let gathered: Vec<Self::Item> = chunk.collect();
            *slots[idx].lock().expect("collect slot poisoned") = Some(gathered);
        });
        slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .expect("collect slot poisoned")
                    .expect("chunk result missing")
            })
            .collect()
    }

    /// Per-chunk partial sums folded in chunk order: deterministic for
    /// floats too, since fold order never depends on scheduling.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let n_chunks = chunk_count(self.total_len(), pool::current_num_threads());
        let chunks = self.split(n_chunks);
        let slots: Vec<Mutex<Option<S>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
        pool::run_chunks(chunks, |idx, (_start, chunk)| {
            *slots[idx].lock().expect("sum slot poisoned") = Some(chunk.sum());
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("sum slot poisoned").expect("missing"))
            .sum()
    }
}

impl<C: Chunked> ParallelIterator for C {}

// ---------------------------------------------------------------------------
// Entry-point traits (rayon::prelude surface)
// ---------------------------------------------------------------------------

/// `collection.par_iter()`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// `collection.par_iter_mut()`.
pub trait IntoParallelRefMutIterator<'a> {
    /// The mutably-borrowed item type.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

/// `collection.into_par_iter()`.
pub trait IntoParallelIterator {
    /// The owned item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `slice.par_chunks_mut(n)`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable `chunk_size`
    /// sub-slices (last one may be shorter), in slice order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> VecSource<&mut [T]>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceSource<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceSource { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceSource<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceSource { slice: self }
    }
}

impl<'a, K, V, S> IntoParallelRefIterator<'a> for HashMap<K, V, S>
where
    K: Sync + 'a,
    V: Sync + 'a,
{
    type Item = (&'a K, &'a V);
    type Iter = VecSource<(&'a K, &'a V)>;
    /// Items are snapshotted in the map's current iteration order; the
    /// parallel split preserves that order for ordered terminals.
    fn par_iter(&'a self) -> Self::Iter {
        VecSource {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = SliceMutSource<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceMutSource { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = SliceMutSource<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        SliceMutSource { slice: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecSource<T>;
    fn into_par_iter(self) -> Self::Iter {
        VecSource { items: self }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> VecSource<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        VecSource {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}
