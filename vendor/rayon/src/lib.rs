//! Offline sequential shim for the subset of the `rayon` API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors this stub as a path dependency.
//!
//! `par_iter()` / `par_chunks_mut()` return the ordinary sequential std
//! iterators, so every "parallel" pipeline runs in submission order on
//! the calling thread. That makes `RAYON_NUM_THREADS` a no-op and
//! thread-count determinism trivially true — which the telemetry test
//! suite still asserts end to end, so swapping a real rayon back in
//! later keeps the same contract under test.

#![forbid(unsafe_code)]

/// Extension traits mirroring `rayon::prelude`.
pub mod prelude {
    /// `slice.par_iter()` → sequential `slice.iter()`.
    pub trait IntoParallelRefIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// `slice.par_iter_mut()` → sequential `slice.iter_mut()`.
    pub trait IntoParallelRefMutIterator<'a> {
        type Item: 'a;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    /// `vec.into_par_iter()` → sequential `vec.into_iter()`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// `slice.par_chunks_mut(n)` → sequential `slice.chunks_mut(n)`.
    pub trait ParallelSliceMut<T> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = std::slice::Iter<'a, T>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, K: 'a, V: 'a, S> IntoParallelRefIterator<'a> for std::collections::HashMap<K, V, S> {
        type Item = (&'a K, &'a V);
        type Iter = std::collections::hash_map::Iter<'a, K, V>;
        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
        type Item = &'a mut T;
        type Iter = std::slice::IterMut<'a, T>;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Number of "worker threads" — always 1 in this sequential shim.
pub fn current_num_threads() -> usize {
    1
}

/// `rayon::join` — runs the two closures in order on this thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v = vec![3, 1, 4, 1, 5];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn par_chunks_mut_covers_everything() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn hashmap_par_iter_collects() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, "a");
        m.insert(2, "b");
        let back: std::collections::HashMap<i32, &str> =
            m.par_iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(m, back);
    }
}
