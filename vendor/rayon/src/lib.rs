//! Offline, std-only implementation of the subset of the `rayon` API
//! this workspace uses — with **real parallel execution**. The build
//! environment has no access to crates.io, so the workspace vendors this
//! crate as a path dependency.
//!
//! Design (see `pool.rs`): every parallel region splits its work into
//! contiguous chunks published in a shared injector (slot vector +
//! atomic cursor). The calling thread plus scoped helper threads steal
//! chunks until the injector drains. Scoped helpers mean borrowed data
//! crosses into workers without `unsafe`; a global helper budget caps
//! fan-out from nested regions. `num_threads = 1` is exactly the
//! sequential loop — no threads are spawned at all.
//!
//! Determinism contract (relied on by the workspace's telemetry golden
//! and determinism suites): all ordered terminals (`collect`) gather
//! per-chunk results into **index-keyed slots** and stitch them in chunk
//! order, so output is byte-identical to the sequential run at every
//! thread count. Workers never consult time or RNG.
//!
//! Thread-count resolution, in priority order:
//! 1. [`ThreadPool::install`] region override,
//! 2. the global pool from [`ThreadPoolBuilder::build_global`],
//! 3. `RAYON_NUM_THREADS`,
//! 4. `std::thread::available_parallelism()`.
//!
//! Covered API: [`join`], [`current_num_threads`], [`ThreadPool`],
//! [`ThreadPoolBuilder`], and in [`prelude`] `par_iter` /
//! `par_iter_mut` / `into_par_iter` (slices, `Vec`, `HashMap`) and
//! `par_chunks_mut`, each supporting `map` / `enumerate` / `for_each` /
//! `collect` / `sum`.

#![forbid(unsafe_code)]

pub mod iter;
mod pool;

pub use pool::{current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Extension traits mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Serialises tests that mutate `RAYON_NUM_THREADS` (process-global).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<i64> = (0..10_000).collect();
        let expect: Vec<i64> = v.iter().map(|x| x * 2).collect();
        for threads in [1, 2, 8] {
            let got: Vec<i64> = pool(threads).install(|| v.par_iter().map(|x| x * 2).collect());
            assert_eq!(got, expect, "order broke at {threads} threads");
        }
    }

    #[test]
    fn par_chunks_mut_covers_everything() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_chunks_mut_parallel_matches_sequential() {
        let n = 1023;
        let mut seq = vec![0u64; n];
        seq.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for (j, x) in c.iter_mut().enumerate() {
                *x = (i * 1_000 + j) as u64;
            }
        });
        let mut par = vec![0u64; n];
        pool(8).install(|| {
            par.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
                for (j, x) in c.iter_mut().enumerate() {
                    *x = (i * 1_000 + j) as u64;
                }
            })
        });
        assert_eq!(seq, par);
    }

    #[test]
    fn hashmap_par_iter_collects() {
        let mut m = std::collections::HashMap::new();
        for i in 0..100 {
            m.insert(i, i * 3);
        }
        let back: std::collections::HashMap<i32, i32> =
            pool(4).install(|| m.par_iter().map(|(&k, &v)| (k, v)).collect());
        assert_eq!(m, back);
    }

    #[test]
    fn into_par_iter_moves_items_in_order() {
        let v: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let expect = v.clone();
        let got: Vec<String> = pool(8).install(|| v.into_par_iter().collect());
        assert_eq!(got, expect);
    }

    #[test]
    fn par_iter_mut_touches_every_item_once() {
        let mut v = vec![0u32; 999];
        pool(8).install(|| v.par_iter_mut().for_each(|x| *x += 1));
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        // And under an explicit multi-threaded pool.
        let (a, b) = pool(4).join(|| (0..100).sum::<i32>(), || 7);
        assert_eq!((a, b), (4950, 7));
    }

    #[test]
    fn for_each_runs_on_multiple_threads_when_asked() {
        // With 4 requested threads and coarse chunks, at least two
        // distinct threads should participate (the caller counts as
        // one). Guarded to pass even on a 1-core box: we assert the
        // *thread id set* is non-empty and work is complete, and only
        // check multiplicity when helpers could actually spawn.
        let ids = Mutex::new(std::collections::HashSet::new());
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        pool(4).install(|| {
            items.par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                counter.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert!(!ids.lock().unwrap().is_empty());
    }

    #[test]
    fn env_var_changes_reported_thread_count() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "3");
        assert_eq!(current_num_threads(), 3);
        std::env::set_var("RAYON_NUM_THREADS", "7");
        assert_eq!(current_num_threads(), 7);
        std::env::remove_var("RAYON_NUM_THREADS");
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn install_overrides_env_var() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RAYON_NUM_THREADS", "2");
        assert_eq!(pool(5).install(current_num_threads), 5);
        assert_eq!(current_num_threads(), 2);
        std::env::remove_var("RAYON_NUM_THREADS");
    }

    #[test]
    fn builder_zero_means_default() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("RAYON_NUM_THREADS");
        let p = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(p.current_num_threads() >= 1);
    }

    #[test]
    fn workers_inherit_region_thread_count() {
        // Inside a 6-thread region, nested code (possibly on a helper
        // thread) must still see 6 from current_num_threads().
        let seen: Vec<usize> = pool(6).install(|| {
            (0..32usize)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(seen.iter().all(|&n| n == 6), "{seen:?}");
    }

    #[test]
    fn nested_regions_complete_and_stay_ordered() {
        let outer: Vec<usize> = (0..8).collect();
        let got: Vec<Vec<usize>> = pool(4).install(|| {
            outer
                .par_iter()
                .map(|&o| {
                    let inner: Vec<usize> = (0..50).collect();
                    inner.par_iter().map(|&i| o * 100 + i).collect()
                })
                .collect()
        });
        for (o, row) in got.iter().enumerate() {
            let expect: Vec<usize> = (0..50).map(|i| o * 100 + i).collect();
            assert_eq!(row, &expect);
        }
    }

    #[test]
    fn panic_in_worker_propagates() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            pool(4).install(|| {
                items.par_iter().for_each(|&i| {
                    if i == 33 {
                        panic!("boom");
                    }
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_sources_are_fine() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e: Vec<u8> = Vec::new();
        e.par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let expect: u64 = v.iter().sum();
        let got: u64 = pool(8).install(|| v.par_iter().map(|&x| x).sum());
        assert_eq!(got, expect);
    }
}
