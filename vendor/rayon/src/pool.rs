//! The execution core: a scoped fork-join pool with a chunked injector
//! queue.
//!
//! Every parallel region (a `join`, `for_each`, or `collect`) splits its
//! work into contiguous chunks, publishes them in a shared injector
//! (slot vector + atomic cursor), and lets the calling thread plus a set
//! of helper threads *steal* chunks in index order until the injector is
//! drained. The calling thread always participates, so a region makes
//! progress even when no helper can be spawned, and `num_threads = 1`
//! degenerates to exactly the sequential loop.
//!
//! Helpers are `std::thread::scope` threads, so borrowed data flows into
//! workers without any `unsafe`: the scope guarantees every helper has
//! exited before the region returns. A global helper budget
//! ([`MAX_LIVE_HELPERS`]) caps the total number of live helpers across
//! nested regions; a region that cannot reserve helpers simply runs on
//! the calling thread.
//!
//! Determinism contract: chunk *results* are written into index-keyed
//! slots and stitched in index order by the caller, so which thread ran
//! which chunk never influences observable output. Nothing in this
//! module reads the clock or any RNG.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Hard cap on concurrently-live helper threads across all regions,
/// nested ones included. Scoped helpers only exist while their region
/// runs, so this is a backstop against nested fan-out explosions, not a
/// steady-state pool size.
const MAX_LIVE_HELPERS: usize = 64;

static LIVE_HELPERS: AtomicUsize = AtomicUsize::new(0);

/// Thread count of the global pool installed via
/// [`ThreadPoolBuilder::build_global`], if any.
static GLOBAL_POOL: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Thread-count override for the current region: set by
    /// [`ThreadPool::install`] on the calling thread and inherited by
    /// every helper the region spawns.
    static REGION_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn env_threads() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Worker-thread count parallel regions started from this thread will
/// use. Resolution order: an installed [`ThreadPool`] region override,
/// then the global pool from [`ThreadPoolBuilder::build_global`], then
/// `RAYON_NUM_THREADS`, then the hardware thread count.
pub fn current_num_threads() -> usize {
    if let Some(n) = REGION_THREADS.with(Cell::get) {
        return n;
    }
    if let Some(&n) = GLOBAL_POOL.get() {
        return n;
    }
    env_threads().unwrap_or_else(hardware_threads)
}

/// Releases reserved helper slots even if the region unwinds.
struct HelperLease(usize);

impl HelperLease {
    fn reserve(want: usize) -> HelperLease {
        let mut cur = LIVE_HELPERS.load(Ordering::Relaxed);
        loop {
            let take = want.min(MAX_LIVE_HELPERS.saturating_sub(cur));
            if take == 0 {
                return HelperLease(0);
            }
            match LIVE_HELPERS.compare_exchange_weak(
                cur,
                cur + take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return HelperLease(take),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Drop for HelperLease {
    fn drop(&mut self) {
        if self.0 > 0 {
            LIVE_HELPERS.fetch_sub(self.0, Ordering::Relaxed);
        }
    }
}

/// Run `job(0..n_jobs)` to completion, stealing jobs from a shared
/// cursor with up to `current_num_threads() - 1` helper threads. Jobs
/// are claimed in index order; each runs exactly once.
pub(crate) fn run_region<F>(n_jobs: usize, job: F)
where
    F: Fn(usize) + Sync,
{
    if n_jobs == 0 {
        return;
    }
    let threads = current_num_threads().min(n_jobs);
    if threads <= 1 {
        for i in 0..n_jobs {
            job(i);
        }
        return;
    }
    let lease = HelperLease::reserve(threads - 1);
    if lease.0 == 0 {
        for i in 0..n_jobs {
            job(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_jobs {
            break;
        }
        job(i);
    };
    std::thread::scope(|s| {
        for _ in 0..lease.0 {
            s.spawn(|| {
                // Helpers belong to the region: nested parallel calls
                // they make see the same thread budget as the caller.
                REGION_THREADS.with(|c| c.set(Some(threads)));
                work();
            });
        }
        work();
    });
}

/// Drain `chunks` (index-keyed payloads) across the pool, applying
/// `sink(chunk_index, payload)` exactly once per chunk. The payloads
/// move to whichever worker claims them; result ordering is the
/// caller's job (key by `chunk_index`).
pub(crate) fn run_chunks<T, F>(chunks: Vec<T>, sink: F)
where
    T: Send,
    F: Fn(usize, T) + Sync,
{
    if chunks.len() <= 1 || current_num_threads() <= 1 {
        for (i, c) in chunks.into_iter().enumerate() {
            sink(i, c);
        }
        return;
    }
    let slots: Vec<Mutex<Option<T>>> = chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    run_region(slots.len(), |i| {
        let payload = slots[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk claimed twice");
        sink(i, payload);
    });
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Falls back to sequential `(a(), b())` when the pool has one
/// thread or the helper budget is exhausted.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let threads = current_num_threads();
    if threads <= 1 {
        return (oper_a(), oper_b());
    }
    let lease = HelperLease::reserve(1);
    if lease.0 == 0 {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            REGION_THREADS.with(|c| c.set(Some(threads)));
            oper_b()
        });
        let ra = oper_a();
        match handle.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Error type for [`ThreadPoolBuilder::build`] /
/// [`ThreadPoolBuilder::build_global`] (mirrors rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    msg: &'static str,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default (environment-driven) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Request `n` worker threads; `0` keeps the default resolution
    /// (env var, then hardware count), as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    fn resolved(&self) -> usize {
        self.num_threads
            .or_else(env_threads)
            .unwrap_or_else(hardware_threads)
    }

    /// Build a pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.resolved(),
        })
    }

    /// Install the thread count as the process-global default. Like
    /// rayon, this may only be done once.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let threads = self.resolved();
        GLOBAL_POOL.set(threads).map_err(|_| ThreadPoolBuildError {
            msg: "the global thread pool has already been initialized",
        })
    }
}

/// A handle fixing the worker-thread count for regions run under
/// [`ThreadPool::install`]. Threads are not pinned to the handle:
/// workers are scoped to each parallel region, so any number of pools
/// can coexist and the handle is freely shareable (`Sync`) and cheap.
#[derive(Clone, Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The worker-thread count regions under this pool will use.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// region `op` enters (restored afterwards, panic-safe).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                REGION_THREADS.with(|c| c.set(self.0));
            }
        }
        let prev = REGION_THREADS.with(|c| c.replace(Some(self.threads)));
        let _restore = Restore(prev);
        op()
    }

    /// `join` under this pool's thread count.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        self.install(|| join(oper_a, oper_b))
    }
}
