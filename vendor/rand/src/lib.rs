//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors this stub as a path dependency.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — high-quality,
//! fast, and fully deterministic for a given `seed_from_u64` value. The
//! value *streams* differ from upstream `rand`, which is fine here: every
//! consumer in this workspace only requires determinism and uniformity,
//! never upstream-compatible sequences (golden files are regenerated
//! against this backend).
//!
//! Supported surface:
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`]
//! - [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges, half-open float ranges), [`Rng::gen_bool`], [`Rng::fill`]
//! - [`rngs::StdRng`], [`rngs::SmallRng`] (same engine; `SmallRng` is
//!   gated behind the `small_rng` feature like upstream)

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// xoshiro256++ core state.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (32 bytes, like upstream `StdRng`).
    type Seed: AsMut<[u8]> + Default;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding via splitmix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `Rng::gen` can produce (upstream: `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges accepted by `Rng::gen_range` (upstream: `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Raw 64-bit output; everything else derives from this.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Ergonomic sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of an inferrable type: `f32`/`f64` in `[0, 1)`,
    /// full-range integers, fair `bool`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased integer in `[0, n)` via Lemire-style rejection.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty float range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty float range");
        let u = f32::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{SeedableRng, Xoshiro256};

    /// Deterministic "standard" generator (xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256);

    /// Small fast generator — identical engine in this stub.
    #[cfg(feature = "small_rng")]
    #[derive(Clone, Debug)]
    pub struct SmallRng(pub(crate) Xoshiro256);

    impl super::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut lanes = [0u64; 4];
            for (i, lane) in lanes.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *lane = u64::from_le_bytes(b);
            }
            if lanes.iter().all(|&l| l == 0) {
                lanes = [1, 2, 3, 4]; // xoshiro must not be all-zero
            }
            StdRng(Xoshiro256 { s: lanes })
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng(Xoshiro256::from_u64(state))
        }
    }

    #[cfg(feature = "small_rng")]
    impl super::RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[cfg(feature = "small_rng")]
    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let StdRng(core) = StdRng::from_seed(seed);
            SmallRng(core)
        }

        fn seed_from_u64(state: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(state))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let sum: f64 = (0..100_000).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
