//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors this stub as a path dependency.
//!
//! It implements just enough to run the `[[bench]]` targets: a
//! [`Criterion`] handle with `bench_function`, a [`Bencher`] with `iter`
//! and `iter_batched`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated loop (warm-up
//! then a fixed measurement budget) printing mean ± spread per benchmark;
//! there are no plots, baselines, or statistical tests.
//!
//! Set `QI_BENCH_QUICK=1` to shrink warm-up/measurement budgets ~20x for
//! smoke runs of the heavier experiment benches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// measured invocation regardless of variant, so this is descriptive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    min_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end || self.samples.len() < self.min_samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end || self.samples.len() < self.min_samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

/// Summary statistics for one completed benchmark, in wall-clock
/// nanoseconds. Returned by [`Criterion::results`] so harnesses can
/// post-process timings (e.g. write a JSON report) instead of scraping
/// stdout.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchStats {
    pub name: String,
    pub samples: usize,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub p05_ns: f64,
    pub p95_ns: f64,
}

impl BenchStats {
    /// Median wall-clock time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median_ns / 1e6
    }
}

/// Entry point handed to each bench function.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    min_samples: usize,
    results: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("QI_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        if quick {
            Criterion {
                warm_up: Duration::from_millis(20),
                measure: Duration::from_millis(100),
                min_samples: 1,
                results: Vec::new(),
            }
        } else {
            Criterion {
                warm_up: Duration::from_millis(400),
                measure: Duration::from_secs(2),
                min_samples: 1,
                results: Vec::new(),
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Override the warm-up and measurement budgets, e.g. for harnesses
    /// that want a fixed sample count rather than a time budget.
    pub fn with_budget(mut self, warm_up: Duration, measure: Duration) -> Self {
        self.warm_up = warm_up;
        self.measure = measure;
        self
    }

    /// Require at least `n` measured samples per benchmark even if the
    /// measurement budget is already spent (capped at the global 100k
    /// sample limit). Default is 1.
    pub fn min_samples(mut self, n: usize) -> Self {
        self.min_samples = n.max(1);
        self
    }

    /// Statistics for every benchmark run so far on this handle, in
    /// execution order.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }

    /// Run one named benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            min_samples: self.min_samples,
            samples: Vec::new(),
        };
        f(&mut b);
        let n = b.samples.len();
        if n == 0 {
            println!("{name:<44} (no samples)");
            return self;
        }
        b.samples.sort();
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let median = if n % 2 == 1 {
            b.samples[n / 2]
        } else {
            (b.samples[n / 2 - 1] + b.samples[n / 2]) / 2
        };
        let p05 = b.samples[n * 5 / 100];
        let p95 = b.samples[(n * 95 / 100).min(n - 1)];
        println!(
            "{name:<44} time: [{} {} {}]  ({n} samples)",
            fmt_duration(p05),
            fmt_duration(mean),
            fmt_duration(p95),
        );
        self.results.push(BenchStats {
            name: name.to_string(),
            samples: n,
            mean_ns: mean.as_nanos() as f64,
            median_ns: median.as_nanos() as f64,
            p05_ns: p05.as_nanos() as f64,
            p95_ns: p95.as_nanos() as f64,
        });
        self
    }

    /// Accepted for compatibility; the shim has no global config to set.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Re-export spot for code that does `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            min_samples: 1,
            results: Vec::new(),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn results_record_stats_per_benchmark() {
        let mut c = Criterion::default()
            .with_budget(Duration::ZERO, Duration::ZERO)
            .min_samples(11);
        c.bench_function("first", |b| b.iter(|| 1 + 1));
        c.bench_function("second", |b| b.iter(|| 2 + 2));
        let stats = c.results();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "first");
        assert_eq!(stats[1].name, "second");
        for s in stats {
            assert_eq!(s.samples, 11);
            assert!(s.p05_ns <= s.median_ns && s.median_ns <= s.p95_ns);
            assert!(s.mean_ns > 0.0);
            assert!((s.median_ms() - s.median_ns / 1e6).abs() < 1e-12);
        }
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            min_samples: 1,
            results: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
