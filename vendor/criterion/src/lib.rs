//! Offline drop-in replacement for the subset of the `criterion` API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors this stub as a path dependency.
//!
//! It implements just enough to run the `[[bench]]` targets: a
//! [`Criterion`] handle with `bench_function`, a [`Bencher`] with `iter`
//! and `iter_batched`, [`BatchSize`], and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a simple calibrated loop (warm-up
//! then a fixed measurement budget) printing mean ± spread per benchmark;
//! there are no plots, baselines, or statistical tests.
//!
//! Set `QI_BENCH_QUICK=1` to shrink warm-up/measurement budgets ~20x for
//! smoke runs of the heavier experiment benches.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// measured invocation regardless of variant, so this is descriptive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            std::hint::black_box(routine());
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end || self.samples.is_empty() {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            let input = setup();
            std::hint::black_box(routine(input));
        }
        let measure_end = Instant::now() + self.measure;
        while Instant::now() < measure_end || self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

/// Entry point handed to each bench function.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("QI_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Criterion {
                warm_up: Duration::from_millis(20),
                measure: Duration::from_millis(100),
            }
        } else {
            Criterion {
                warm_up: Duration::from_millis(400),
                measure: Duration::from_secs(2),
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

impl Criterion {
    /// Run one named benchmark and print its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warm_up: self.warm_up,
            measure: self.measure,
            samples: Vec::new(),
        };
        f(&mut b);
        let n = b.samples.len();
        if n == 0 {
            println!("{name:<44} (no samples)");
            return self;
        }
        b.samples.sort();
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let p05 = b.samples[n * 5 / 100];
        let p95 = b.samples[(n * 95 / 100).min(n - 1)];
        println!(
            "{name:<44} time: [{} {} {}]  ({n} samples)",
            fmt_duration(p05),
            fmt_duration(mean),
            fmt_duration(p95),
        );
        self
    }

    /// Accepted for compatibility; the shim has no global config to set.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Re-export spot for code that does `criterion::black_box`.
pub use std::hint::black_box;

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
