#!/usr/bin/env bash
# Reproduce BENCH_parallel.json: build in release mode, run the parallel
# execution bench at 1/2/N threads, and leave the JSON report at the
# repository root.
#
# Usage:
#   scripts/bench.sh            # full run (5 samples per point, 512^3 matmul)
#   scripts/bench.sh --smoke    # quick run (2 samples, 192^3 matmul)
#
# Environment:
#   QI_BENCH_THREADS=1,2,8   thread counts to sweep
#   QI_BENCH_OUT=path.json   where to write the report
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    export QI_SMOKE=1
fi

cargo bench -p qi-bench --bench parallel
