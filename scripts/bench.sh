#!/usr/bin/env bash
# Reproduce BENCH_parallel.json: build in release mode, run the
# fault-injection smoke sweep (replay-determinism gate), then the
# parallel execution bench at 1/2/N threads, and leave the JSON report
# at the repository root.
#
# Usage:
#   scripts/bench.sh            # full run (5 samples per point, 512^3 matmul)
#   scripts/bench.sh --smoke    # quick run (2 samples, 192^3 matmul)
#
# Environment:
#   QI_BENCH_THREADS=1,2,8   thread counts to sweep
#   QI_BENCH_OUT=path.json   where to write the report
#   QI_SKIP_FAULT_SWEEP=1    skip the fault smoke sweep
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    export QI_SMOKE=1
fi

# Fault-injection smoke sweep: exercises every fault event type plus the
# retry path and exits non-zero if a faulted replay is not byte-identical.
if [[ "${QI_SKIP_FAULT_SWEEP:-}" != "1" ]]; then
    cargo run --release --example fault_sweep
fi

cargo bench -p qi-bench --bench parallel
