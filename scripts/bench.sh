#!/usr/bin/env bash
# Reproduce BENCH_parallel.json, BENCH_serve.json, BENCH_sim.json,
# BENCH_control.json, and BENCH_anomaly.json: build in release mode,
# run the fault-injection smoke sweep, the online-serving loop, the
# simulator-core differential replay harness, and the anomaly-detection
# differential harness (all replay-determinism gates), then the
# parallel execution bench at 1/2/N threads, the serving-throughput
# bench, the simulator-core scaling bench, the closed-loop control
# bench, and the anomaly-scale bench, leaving the JSON reports at the
# repository root.
#
# Usage:
#   scripts/bench.sh            # full run (5 samples per point, 512^3 matmul)
#   scripts/bench.sh --smoke    # quick run (2 samples, 192^3 matmul)
#
# Environment:
#   QI_BENCH_THREADS=1,2,8   thread counts to sweep (both benches)
#   QI_SERVE_SHARDS=1,2,4,8  shard counts for the serving sweep
#   QI_BENCH_OUT=path.json   where to write the parallel report
#   QI_SERVE_OUT=path.json   where to write the serving report
#   QI_SIM_OUT=path.json     where to write the simulator-scaling report
#   QI_SKIP_FAULT_SWEEP=1    skip the fault smoke sweep
#   QI_SKIP_SERVE=1          skip the serve-loop gate + serving bench
#   QI_SKIP_SERVE_GATE=1     run the serving bench but waive its
#                            throughput gate (recorded in the JSON);
#                            the shard/thread determinism gates are
#                            NEVER waived
#   QI_SKIP_P95_GATE=1       waive the serving p95 regression gate
#                            (re-baselining on different hardware)
#   QI_SKIP_SIM=1            skip the sim-equivalence harness + scaling bench
#   QI_SKIP_SIM_GATE=1       run the scaling bench but waive its 3x gate
#   QI_CONTROL_OUT=path.json where to write the closed-loop report
#   QI_SKIP_CONTROL=1        skip the control-determinism harness + the
#                            closed-loop bench
#   QI_SKIP_CONTROL_GATE=1   run the closed-loop bench but waive its
#                            mitigated<=unmitigated / guided-beats-uniform
#                            gate (recorded in the JSON); the controlled
#                            replay determinism gate is NEVER waived
#   QI_ANOMALY_OUT=path.json where to write the anomaly report
#   QI_SKIP_ANOMALY=1        skip the anomaly differential harness + the
#                            anomaly-scale bench
#   QI_SKIP_ANOMALY_GATE=1   run the anomaly bench but waive its
#                            >=30%-ingest-saved / zero-drift gate
#                            (recorded in the JSON); the scorer/sampler/
#                            store determinism gates are NEVER waived
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    export QI_SMOKE=1
fi

# Hygiene gate: benchmark numbers are only worth recording from a tree
# that passes the same formatting bar CI holds the code to.
cargo fmt --check

# Fault-injection smoke sweep: exercises every fault event type plus the
# retry path and exits non-zero if a faulted replay is not byte-identical.
if [[ "${QI_SKIP_FAULT_SWEEP:-}" != "1" ]]; then
    cargo run --release --example fault_sweep
fi

# Online-serving gate: trains, serves a faulted interfered run through
# the micro-batching engine with a mid-stream hot swap, an overloaded
# Shed replay, and a tenant-sharded replay; exits non-zero if the
# accounting invariant breaks or the serving telemetry differs across
# worker-thread counts or shard counts.
if [[ "${QI_SKIP_SERVE:-}" != "1" ]]; then
    cargo run --release --example serve_loop
fi

cargo bench -p qi-bench --bench parallel

# Simulator core: the differential replay harness (calendar vs heap vs
# reference backends, healthy + faulted, 1/2/8 threads, byte-identical
# traces and feature blocks), then the scaling bench (queue-churn and
# end-to-end events/sec curves at 4..32 OSS, written to BENCH_sim.json).
# The bench enforces calendar >= 3x heap churn throughput at 32 OSS; in
# smoke mode the gate is waived automatically (timing on 1-CPU or loaded
# machines is noise at the short smoke iteration counts).
if [[ "${QI_SKIP_SIM:-}" != "1" ]]; then
    cargo test --release -q --test sim_equivalence
    sim_env=()
    if [[ -n "${QI_SIM_OUT:-}" ]]; then
        sim_env+=("QI_BENCH_OUT=$QI_SIM_OUT")
    fi
    if [[ "${QI_SMOKE:-}" == "1" ]]; then
        sim_env+=("QI_SKIP_SIM_GATE=1")
    fi
    if [[ ${#sim_env[@]} -gt 0 ]]; then
        env -u QI_BENCH_OUT "${sim_env[@]}" cargo bench -p qi-bench --bench sim_scale
    else
        env -u QI_BENCH_OUT cargo bench -p qi-bench --bench sim_scale
    fi
fi

# Closed-loop control: the controlled-replay determinism harness
# (guided + uniform controllers, healthy + faulted, byte-identical
# traces, directive sequences, and telemetry across 1/2/8 threads and
# reruns, plus the hysteresis-gate property test), then the closed-loop
# bench: guided vs uniform throttling across three interference regimes
# with a hard gate — in every regime the guided run must not be slower
# than the unmitigated run, must emit directives, and must cost less
# background throughput than uniform throttling (QI_SKIP_CONTROL_GATE=1
# to waive). Controller overhead per simulated window and the full
# guided/uniform table land in BENCH_control.json.
if [[ "${QI_SKIP_CONTROL:-}" != "1" ]]; then
    cargo test --release -q --test control_determinism
    if [[ -n "${QI_CONTROL_OUT:-}" ]]; then
        QI_BENCH_OUT="$QI_CONTROL_OUT" cargo bench -p qi-bench --bench control_loop
    else
        env -u QI_BENCH_OUT cargo bench -p qi-bench --bench control_loop
    fi
fi

# Anomaly detection & adaptive monitoring: the differential harness
# (scorer bit-determinism across reruns and 1/2/8-thread pools,
# unbounded-sampler pass-through equivalence, ring-store vs unbounded
# read-back equivalence, faulted-above-healthy-p95 ROC separation),
# then the scale bench: isolation-forest scoring throughput, sampler
# ingest reduction on a quiet synthetic cluster and on the faulted
# session, and the RLE ring's memory proxy, written to
# BENCH_anomaly.json. The bench enforces >=30% ingest saved on both
# regimes at zero window-boundary counter drift (QI_SKIP_ANOMALY_GATE=1
# to waive; recorded in the JSON).
if [[ "${QI_SKIP_ANOMALY:-}" != "1" ]]; then
    cargo test --release -q --test anomaly_detection
    if [[ -n "${QI_ANOMALY_OUT:-}" ]]; then
        QI_BENCH_OUT="$QI_ANOMALY_OUT" cargo bench -p qi-bench --bench anomaly_scale
    else
        env -u QI_BENCH_OUT cargo bench -p qi-bench --bench anomaly_scale
    fi
fi

# Serving throughput: batch {1,8,32} x worker threads on the single
# engine, plus the sharded sweep (QI_SERVE_SHARDS, default 1,2,4,8)
# driving every shard from its own rayon worker. Classes are asserted
# identical across every batch size, thread count, and shard count
# (never waived), batch 32 must beat batch 1, each row's p95 is gated to
# +10% of the recorded baseline (QI_SKIP_P95_GATE=1 to re-baseline),
# and the throughput gate requires >= 1M aggregate preds/s on
# multi-core hosts — auto-degraded on a single hardware thread to
# single-shard fused throughput >= 1.5x the PR-4 baseline, with the
# waiver reason recorded in the JSON's "gate" object. Smoke runs waive
# the throughput gate automatically (QI_SKIP_SERVE_GATE=1 forces it).
# QI_BENCH_OUT is unset for this bench (it names the *parallel* report);
# the default output is BENCH_serve.json at the repo root, QI_SERVE_OUT
# overrides it (relative paths resolve against crates/bench).
if [[ "${QI_SKIP_SERVE:-}" != "1" ]]; then
    if [[ -n "${QI_SERVE_OUT:-}" ]]; then
        QI_BENCH_OUT="$QI_SERVE_OUT" cargo bench -p qi-bench --bench serve_throughput
    else
        env -u QI_BENCH_OUT cargo bench -p qi-bench --bench serve_throughput
    fi
fi
