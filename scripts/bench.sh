#!/usr/bin/env bash
# Reproduce BENCH_parallel.json, BENCH_serve.json, BENCH_sim.json,
# BENCH_control.json, and BENCH_anomaly.json: build in release mode,
# run the fault-injection smoke sweep, the online-serving loop, the
# simulator-core differential replay harness (including the parallel
# shard sweep), and the anomaly-detection differential harness (all
# replay-determinism gates), then the parallel execution bench at
# 1/2/N threads, the serving-throughput bench, the simulator-core
# scaling bench, the closed-loop control bench, and the anomaly-scale
# bench, leaving the JSON reports at the repository root.
#
# Usage:
#   scripts/bench.sh            # full run (5 samples per point, 512^3 matmul)
#   scripts/bench.sh --smoke    # quick run (2 samples, 192^3 matmul)
#
# Environment:
#   QI_BENCH_THREADS=1,2,8   thread counts to sweep (both benches)
#   QI_SERVE_SHARDS=1,2,4,8  shard counts for the serving sweep
#   QI_BENCH_OUT=path.json   where to write the parallel report
#   QI_SERVE_OUT=path.json   where to write the serving report
#   QI_SIM_OUT=path.json     where to write the simulator-scaling report
#   QI_CONTROL_OUT=path.json where to write the closed-loop report
#   QI_ANOMALY_OUT=path.json where to write the anomaly report
#   QI_SKIP_FAULT_SWEEP=1    skip the fault smoke sweep
#   QI_SKIP_SERVE=1          skip the serve-loop gate + serving bench
#   QI_SKIP_SIM=1            skip the sim-equivalence harness + scaling bench
#   QI_SKIP_CONTROL=1        skip the control-determinism harness + the
#                            closed-loop bench
#   QI_SKIP_ANOMALY=1        skip the anomaly differential harness + the
#                            anomaly-scale bench
#   QI_SKIP_PARSIM=1         skip the parallel-simulator shard sweep (both
#                            the sharded replay tests and the bench curve)
#
#   Timing-gate waivers — each runs its bench but records the waiver in
#   the JSON; determinism/replay gates are NEVER waived:
#   QI_SKIP_SERVE_GATE=1     waive the serving throughput gate
#   QI_SKIP_P95_GATE=1       waive the serving p95 regression gate
#                            (re-baselining on different hardware)
#   QI_SKIP_SIM_GATE=1       waive the scaling bench's 3x churn gate
#   QI_SKIP_PARSIM_GATE=1    waive the sharded 10%-overhead-at-1-thread
#                            gate (shard-count determinism still asserted)
#   QI_SKIP_CONTROL_GATE=1   waive the mitigated<=unmitigated /
#                            guided-beats-uniform gate
#   QI_SKIP_ANOMALY_GATE=1   waive the >=30%-ingest-saved / zero-drift gate
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
    export QI_SMOKE=1
    # Wall-clock gates are pure noise at smoke iteration counts (and on
    # the 1-CPU or loaded machines smoke runs target); determinism gates
    # stay armed regardless.
    export QI_SKIP_SIM_GATE=1 QI_SKIP_PARSIM_GATE=1
fi

# One gated report stage. Skipped wholesale when the QI_SKIP_* variable
# named by $1 is 1; otherwise runs each `--test` determinism harness in
# release mode, then the named qi-bench bench with QI_BENCH_OUT pointed
# at the per-report override named by $2 (or scrubbed, so the bench
# falls back to its default report path — QI_BENCH_OUT itself names the
# *parallel* report and must not leak into the other benches).
#
#   stage SKIP_VAR OUT_VAR BENCH [--test NAME]...
stage() {
    local skip_var="$1" out_var="$2" bench="$3"
    shift 3
    if [[ "${!skip_var:-}" == "1" ]]; then
        return 0
    fi
    while [[ $# -gt 0 ]]; do
        case "$1" in
        --test)
            cargo test --release -q --test "$2"
            shift 2
            ;;
        *)
            echo "stage: unknown argument $1" >&2
            return 1
            ;;
        esac
    done
    if [[ -n "${!out_var:-}" ]]; then
        QI_BENCH_OUT="${!out_var}" cargo bench -p qi-bench --bench "$bench"
    else
        env -u QI_BENCH_OUT cargo bench -p qi-bench --bench "$bench"
    fi
}

# Hygiene gate: benchmark numbers are only worth recording from a tree
# that passes the same formatting bar CI holds the code to.
cargo fmt --check

# Fault-injection smoke sweep: exercises every fault event type plus the
# retry path and exits non-zero if a faulted replay is not byte-identical.
if [[ "${QI_SKIP_FAULT_SWEEP:-}" != "1" ]]; then
    cargo run --release --example fault_sweep
fi

# Online-serving gate: trains, serves a faulted interfered run through
# the micro-batching engine with a mid-stream hot swap, an overloaded
# Shed replay, and a tenant-sharded replay; exits non-zero if the
# accounting invariant breaks or the serving telemetry differs across
# worker-thread counts or shard counts.
if [[ "${QI_SKIP_SERVE:-}" != "1" ]]; then
    cargo run --release --example serve_loop
fi

cargo bench -p qi-bench --bench parallel

# Simulator core (BENCH_sim.json): the differential replay harness
# (calendar vs heap vs reference backends, healthy + faulted + sharded +
# controlled, 1/2/8 threads, byte-identical traces and feature blocks),
# then the scaling bench: queue-churn and end-to-end events/sec curves
# at 4..32 OSS plus the parallel shard sweep at sim_shards 1/2/4/8. The
# bench enforces calendar >= 3x heap churn at 32 OSS (QI_SKIP_SIM_GATE)
# and sharded overhead <= 10% at 1 thread (QI_SKIP_PARSIM_GATE); the
# shard-count determinism assertions are never waived.
stage QI_SKIP_SIM QI_SIM_OUT sim_scale --test sim_equivalence

# Closed-loop control (BENCH_control.json): the controlled-replay
# determinism harness (guided + uniform controllers, healthy + faulted,
# byte-identical traces, directive sequences, and telemetry across
# 1/2/8 threads and reruns, plus the hysteresis-gate property test),
# then the closed-loop bench: guided vs uniform throttling across three
# interference regimes with a hard gate — in every regime the guided
# run must not be slower than the unmitigated run, must emit
# directives, and must cost less background throughput than uniform
# throttling (QI_SKIP_CONTROL_GATE=1 to waive).
stage QI_SKIP_CONTROL QI_CONTROL_OUT control_loop --test control_determinism

# Anomaly detection & adaptive monitoring (BENCH_anomaly.json): the
# differential harness (scorer bit-determinism across reruns and
# 1/2/8-thread pools, unbounded-sampler pass-through equivalence,
# ring-store vs unbounded read-back equivalence, faulted-above-healthy
# p95 ROC separation), then the scale bench: isolation-forest scoring
# throughput, sampler ingest reduction, and the RLE ring's memory
# proxy. The bench enforces >=30% ingest saved at zero window-boundary
# counter drift (QI_SKIP_ANOMALY_GATE=1 to waive).
stage QI_SKIP_ANOMALY QI_ANOMALY_OUT anomaly_scale --test anomaly_detection

# Serving throughput (BENCH_serve.json): batch {1,8,32} x worker
# threads on the single engine, plus the sharded sweep (QI_SERVE_SHARDS,
# default 1,2,4,8) driving every shard from its own rayon worker.
# Classes are asserted identical across every batch size, thread count,
# and shard count (never waived), batch 32 must beat batch 1, each
# row's p95 is gated to +10% of the recorded baseline
# (QI_SKIP_P95_GATE=1 to re-baseline), and the throughput gate requires
# >= 1M aggregate preds/s on multi-core hosts — auto-degraded on a
# single hardware thread, with the waiver reason recorded in the JSON's
# "gate" object. Smoke runs waive the throughput gate automatically
# (QI_SKIP_SERVE_GATE=1 forces it).
stage QI_SKIP_SERVE QI_SERVE_OUT serve_throughput
