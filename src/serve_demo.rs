//! The canonical online-serving session, shared by
//! `examples/serve_loop.rs` and the golden-snapshot test in
//! `tests/telemetry_golden.rs`.
//!
//! One fixed, smoke-scale story: train two model versions offline, load
//! both into a versioned registry from their `QIMODEL` text form, then
//! replay a *fresh* interfered run — executed under an active
//! [`FaultPlan`] — through the feature pipeline into the micro-batching
//! service. The same trace is replayed twice through one engine with a
//! hot swap to version 2 in between, once more through a separate
//! engine with deliberately tight admission so the `Shed` overload
//! policy fires, and twice (with the same hot swap) through the
//! tenant-sharded scale-out engine. Everything is driven from simulated
//! time, so the session — serving telemetry included — is
//! byte-identical across reruns, worker-thread counts, and shard
//! counts.

use qi_ml::serialize::model_to_text;
use qi_ml::train::{train_with_schema, ModelShape};
use qi_pfs::ids::AppId;
use qi_serve::{
    replay_trace, ModelRegistry, OverloadPolicy, ReplaySummary, ServeConfig, ServeEngine,
    ShardedServeEngine,
};
use qi_simkit::time::SimDuration;
use qi_telemetry::MetricsSnapshot;

use crate::framework::prelude::*;

/// Everything one serving session produced.
pub struct ServeSession {
    /// Offline held-out F1 of model version 1.
    pub offline_f1: f64,
    /// The shape both model versions were validated against.
    pub shape: ModelShape,
    /// First replay: model version 1, generous service.
    pub v1: ReplaySummary,
    /// Second replay on the SAME engine, after the hot swap to v2.
    pub v2: ReplaySummary,
    /// Single replay through the tight-admission engine (Shed policy).
    pub overload: ReplaySummary,
    /// First sharded replay: model v1 through the tenant-sharded engine.
    pub sharded_v1: ReplaySummary,
    /// Second sharded replay, after the sharded hot swap to v2.
    pub sharded_v2: ReplaySummary,
    /// Final telemetry of the main engine (both passes + the swap).
    pub snapshot: MetricsSnapshot,
    /// Final telemetry of the overload engine.
    pub overload_snapshot: MetricsSnapshot,
    /// Final telemetry of the sharded engine — byte-identical at ANY
    /// shard count (the tentpole invariant of `qi_serve::sharded`).
    pub sharded_snapshot: MetricsSnapshot,
}

impl ServeSession {
    /// The serving-layer accounting invariant, on both engines: every
    /// submitted request was answered fresh, answered stale, or shed
    /// (queues are empty after `finish`). Returns a description of the
    /// first violation, if any.
    pub fn check_accounting(&self) -> Result<(), String> {
        for (name, snap) in [
            ("main", &self.snapshot),
            ("overload", &self.overload_snapshot),
            ("sharded", &self.sharded_snapshot),
        ] {
            let c = |k: &str| snap.counter(k).unwrap_or(0);
            let (req, ans, stale, shed) = (
                c("serve.requests"),
                c("serve.answered"),
                c("serve.stale"),
                c("serve.shed"),
            );
            if req != ans + stale + shed {
                return Err(format!(
                    "{name} engine: requests {req} != answered {ans} + stale {stale} + shed {shed}"
                ));
            }
        }
        let c = |k: &str| self.overload_snapshot.counter(k).unwrap_or(0);
        if c("serve.shed") == 0 {
            return Err("overload engine shed nothing; admission not tight enough".into());
        }
        if self.overload.shed != c("serve.shed") {
            return Err(format!(
                "shed admissions seen by the driver ({}) disagree with the shed counter ({})",
                self.overload.shed,
                c("serve.shed")
            ));
        }
        Ok(())
    }
}

/// Run the whole session with `threads` worker threads and a sharded
/// replay at `n_shards` worker shards. The returned telemetry must be
/// byte-identical for any choice of `threads` and `n_shards` — the
/// golden test and `examples/serve_loop.rs` both gate on that.
pub fn run_serve_session(threads: Option<usize>, n_shards: usize) -> Result<ServeSession, QiError> {
    // ------------------------------------------------------------------
    // 1. Offline: train two model versions on a reduced smoke grid.
    //    (v2 simply trains longer — a plausible "nightly retrain".)
    // ------------------------------------------------------------------
    let mut spec = DatasetSpec::smoke();
    spec.seeds = vec![1, 2, 3, 4];
    spec.intensities = vec![1, 2, 3];
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (generated, predictor, report) = train_and_evaluate(&spec, &tcfg, 5)?;
    let offline_f1 = report.headline_f1();
    let v1 = predictor.into_model();
    let tcfg2 = TrainConfig {
        epochs: 18,
        ..TrainConfig::default()
    };
    let v2 = train_with_schema(&generated.data, &tcfg2, generated.schema.clone())?;
    let shape = v1.shape();
    let schema = generated.schema.clone();

    // ------------------------------------------------------------------
    // 2. A fresh interfered run the models never saw, under an active
    //    fault plan (a disk slowed 3x for the first half-minute).
    // ------------------------------------------------------------------
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 77)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    })
    .with_fault_plan(FaultPlan::new().with(FaultEvent::SlowDisk {
        dev: 0,
        factor: 3.0,
        from: qi_simkit::time::SimTime::ZERO,
        until: qi_simkit::time::SimTime::ZERO + SimDuration::from_secs(30),
    }));
    let (_, trace) = scenario.run()?;
    let n_devices = scenario.cluster.n_devices();
    let tenants: Vec<AppId> = (0..trace.app_completion.len())
        .map(|i| AppId(i as u32))
        .collect();

    // ------------------------------------------------------------------
    // 3. Registry: both versions enter through their QIMODEL text form
    //    (the same serialization a deployment would ship), v1 active.
    // ------------------------------------------------------------------
    let mut registry = ModelRegistry::new(shape, schema.clone());
    registry.load_text(1, &model_to_text(&v1))?;
    registry.load_text(2, &model_to_text(&v2))?;
    registry.activate(1)?;

    // ------------------------------------------------------------------
    // 4. Main engine: micro-batching, no admission pressure. Replay the
    //    trace under v1, hot-swap to v2 between replays, replay again.
    // ------------------------------------------------------------------
    let cfg = ServeConfig {
        max_batch: 4,
        max_delay: spec.window.window,
        queue_cap: 16,
        admission: None,
        overload: OverloadPolicy::Shed,
        tenants: tenants.clone(),
        threads,
    };
    let mut engine = ServeEngine::new(cfg, registry)?;
    let pass1 = replay_trace(&mut engine, &trace, n_devices)?;
    let flushed = engine.activate(trace.end, 2)?;
    debug_assert!(flushed.is_empty(), "replay_trace drains the queue");
    let pass2 = replay_trace(&mut engine, &trace, n_devices)?;
    let snapshot = engine.metrics_snapshot();

    // ------------------------------------------------------------------
    // 5. Overload engine: same trace, but admission tight enough that
    //    the token bucket cannot keep up and the Shed policy fires.
    // ------------------------------------------------------------------
    let tight = ServeConfig {
        max_batch: 4,
        max_delay: spec.window.window,
        queue_cap: 8,
        admission: Some((1.0, 2.0)),
        overload: OverloadPolicy::Shed,
        tenants: tenants.clone(),
        threads,
    };
    let mut registry2 = ModelRegistry::new(shape, schema);
    registry2.load_text(1, &model_to_text(&v1))?;
    registry2.activate(1)?;
    let mut shed_engine = ServeEngine::new(tight, registry2)?;
    let overload = replay_trace(&mut shed_engine, &trace, n_devices)?;
    let overload_snapshot = shed_engine.metrics_snapshot();

    // ------------------------------------------------------------------
    // 6. Sharded engine: the same generous replay + hot swap through the
    //    tenant-sharded scale-out engine. Lanes batch per tenant, so the
    //    batch composition differs from the single engine — but NOTHING
    //    here may depend on `n_shards`: the returned telemetry is the
    //    byte-equality witness for the sharding invariant.
    // ------------------------------------------------------------------
    let sharded_cfg = ServeConfig {
        max_batch: 4,
        max_delay: spec.window.window,
        queue_cap: 16,
        admission: None,
        overload: OverloadPolicy::Shed,
        tenants,
        threads,
    };
    let mut registry3 = ModelRegistry::new(shape, generated.schema.clone());
    registry3.load_text(1, &model_to_text(&v1))?;
    registry3.load_text(2, &model_to_text(&v2))?;
    registry3.activate(1)?;
    let mut sharded_engine = ShardedServeEngine::new(sharded_cfg, registry3, n_shards)?;
    let sharded_pass1 = replay_trace(&mut sharded_engine, &trace, n_devices)?;
    let flushed = sharded_engine.activate(trace.end, 2)?;
    debug_assert!(flushed.is_empty(), "replay_trace drains every lane");
    let sharded_pass2 = replay_trace(&mut sharded_engine, &trace, n_devices)?;
    let sharded_snapshot = sharded_engine.metrics_snapshot();

    Ok(ServeSession {
        offline_f1,
        shape,
        v1: pass1,
        v2: pass2,
        overload,
        sharded_v1: sharded_pass1,
        sharded_v2: sharded_pass2,
        snapshot,
        overload_snapshot,
        sharded_snapshot,
    })
}
