//! The reproduction's equivalent of the paper artifact's
//! `generate_eval_results.py` (Appendix, Artifact Execution): trains and
//! evaluates a model for each of the six modelling scenarios of
//! Figures 3-5, recreates Figure 1 from trace data, and writes every
//! result to `eval_results/`.
//!
//! ```sh
//! cargo run --release --bin generate_eval_results            # full scale
//! cargo run --release --bin generate_eval_results -- --smoke # fast
//! ```

use std::path::PathBuf;

use quanterference_repro::framework::experiments::{
    fig_one_a, fig_one_b, series_table, FigOneConfig,
};
use quanterference_repro::framework::labeling::Bins;
use quanterference_repro::framework::predict::{family_spec, train_and_evaluate, EvalReport};
use quanterference_repro::framework::{TrainConfig, WorkloadKind};
use quanterference_repro::simkit::AsciiTable;

fn confusion_csv(report: &EvalReport) -> AsciiTable {
    let mut t = AsciiTable::new(vec![
        "actual".to_string(),
        "predicted".to_string(),
        "count".to_string(),
    ]);
    let n = report.cm.n_classes();
    for a in 0..n {
        for p in 0..n {
            t.add_row(vec![
                report.labels[a].clone(),
                report.labels[p].clone(),
                report.cm.get(a, p).to_string(),
            ]);
        }
    }
    t
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("QI_SMOKE").map(|v| v == "1").unwrap_or(false);
    let out = PathBuf::from("eval_results");
    std::fs::create_dir_all(&out).expect("create eval_results/");
    let tcfg = TrainConfig {
        epochs: if smoke { 20 } else { 40 },
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let mut summary = AsciiTable::new(vec![
        "scenario".to_string(),
        "windows".to_string(),
        "accuracy".to_string(),
        "f1".to_string(),
    ]);

    // The six modelling scenarios of Figures 3-5.
    let scenarios: Vec<(&str, Vec<WorkloadKind>, Bins)> = vec![
        (
            "fig3a_io500_binary",
            WorkloadKind::IO500.to_vec(),
            Bins::binary(),
        ),
        (
            "fig3b_dlio_binary",
            WorkloadKind::DLIO.to_vec(),
            Bins::binary(),
        ),
        (
            "fig4_io500_multiclass",
            WorkloadKind::IO500.to_vec(),
            Bins::three_class(),
        ),
        ("fig5_amrex", vec![WorkloadKind::Amrex], Bins::binary()),
        ("fig5_enzo", vec![WorkloadKind::Enzo], Bins::binary()),
        ("fig5_openpmd", vec![WorkloadKind::OpenPmd], Bins::binary()),
    ];
    for (name, family, bins) in scenarios {
        println!("== {name} ==");
        let mut spec = family_spec(&family, smoke);
        spec.bins = bins;
        let mut cfg = tcfg.clone();
        cfg.n_classes = spec.bins.n_classes();
        let (gen, _, report) = train_and_evaluate(&spec, &cfg, 42)?;
        println!("{}", report.render());
        println!("F1 = {:.3}\n", report.headline_f1());
        confusion_csv(&report)
            .write_csv(out.join(format!("{name}.csv")))
            .expect("write CSV");
        // Pipeline telemetry, in both renderers the qi-telemetry crate
        // offers (JSON snapshot for tooling, Prometheus text for eyes).
        std::fs::write(
            out.join(format!("{name}.metrics.json")),
            report.metrics.to_json(),
        )
        .expect("write metrics JSON");
        std::fs::write(
            out.join(format!("{name}.metrics.prom")),
            report.metrics.to_prometheus_text(),
        )
        .expect("write metrics text");
        summary.add_row(vec![
            name.to_string(),
            gen.data.len().to_string(),
            format!("{:.4}", report.cm.accuracy()),
            format!("{:.4}", report.headline_f1()),
        ]);
    }

    // Figure 1 recreation from trace data.
    println!("== fig1 (Enzo per-op traces) ==");
    let fcfg = if smoke {
        FigOneConfig::smoke()
    } else {
        FigOneConfig::paper()
    };
    series_table(&fig_one_a(&fcfg, 3)?)
        .write_csv(out.join("fig1a_enzo_vs_write_levels.csv"))
        .expect("write CSV");
    series_table(&fig_one_b(&fcfg, 3)?)
        .write_csv(out.join("fig1b_enzo_noise_types.csv"))
        .expect("write CSV");

    summary
        .write_csv(out.join("summary.csv"))
        .expect("write summary");
    println!("{}", summary.render());
    println!(
        "all evaluation results written to {}/ in {:.1?}",
        out.display(),
        t0.elapsed()
    );
    Ok(())
}
