//! # quanterference-repro
//!
//! Umbrella crate for the reproduction of *"Understanding and Predicting
//! Cross-Application I/O Interference in HPC Storage Systems"* (SC 2024).
//!
//! This crate re-exports the whole stack and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). The parts:
//!
//! - [`simkit`] — deterministic discrete-event core and numeric utilities.
//! - [`faults`] — deterministic fault plans (slow disks, lossy links, …).
//! - [`pfs`] — the Lustre-like parallel file system simulator.
//! - [`workloads`] — IO500 / DLIO / application-proxy workload generators.
//! - [`monitor`] — client-side and server-side monitors (paper §III-A/B).
//! - [`ml`] — the from-scratch kernel-based neural network (paper §III-C).
//! - [`telemetry`] — deterministic metrics registry and snapshot renderers.
//! - [`serve`] — online prediction service (model registry, micro-batching).
//! - [`control`] — the online mitigation control plane (policies,
//!   hysteresis gate, in-simulation control loop).
//! - [`framework`] — scenarios, labelling, datasets, training, prediction.
//!
//! Quick start (see `examples/quickstart.rs` for the full version):
//!
//! ```
//! use quanterference_repro::framework::prelude::*;
//!
//! # fn main() -> Result<(), QiError> {
//! // How much does ior-easy-read suffer under 2 concurrent readers?
//! let scenario = Scenario {
//!     cluster: ClusterConfig::small(),
//!     small: true,
//!     target_ranks: 2,
//!     ..Scenario::baseline(WorkloadKind::IorEasyRead, 7)
//! }
//! .with_interference(InterferenceSpec {
//!     kind: WorkloadKind::IorEasyRead,
//!     instances: 2,
//!     ranks: 2,
//! });
//! let (app, base) = scenario.run_baseline()?;
//! let (_, noisy) = scenario.run()?;
//! let slowdown = completion_slowdown(&base, &noisy, app).unwrap();
//! assert!(slowdown > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod anomaly_demo;
pub mod serve_demo;

pub use qi_control as control;
pub use qi_faults as faults;
pub use qi_ml as ml;
pub use qi_monitor as monitor;
pub use qi_pfs as pfs;
pub use qi_serve as serve;
pub use qi_simkit as simkit;
pub use qi_telemetry as telemetry;
pub use qi_workloads as workloads;
pub use quanterference as framework;
