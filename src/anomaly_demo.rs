//! The canonical anomaly-detection session, shared by the golden
//! snapshot in `tests/telemetry_golden.rs` and the differential
//! harness in `tests/anomaly_detection.rs`.
//!
//! One fixed, smoke-scale story: fit a deterministic isolation forest
//! on three healthy baseline runs, then score (a) a *held-out* healthy
//! run the forest never saw, (b) the same held-out run executed under
//! an aggressive fault plan (one disk slowed 7×, plus an MDS lock
//! storm) — faults **outside** the supervised label space — and (c)
//! the faulted run again behind the budget-bounded adaptive sampler.
//! Everything is seeded and driven from simulated time, so the whole
//! session — scores, verdicts, sampler accounting, telemetry — is
//! byte-identical across reruns and worker-thread counts.

use qi_telemetry::MetricsSnapshot;

use crate::framework::prelude::*;
use qi_simkit::time::{SimDuration, SimTime};

/// Everything one anomaly session produced.
pub struct AnomalySession {
    /// The healthy-p95 verdict threshold the detector fitted.
    pub threshold: f64,
    /// Report on the held-out healthy run (no sampler).
    pub healthy: AnomalyReport,
    /// Report on the faulted run (no sampler).
    pub faulted: AnomalyReport,
    /// Report on the faulted run read through the adaptive sampler.
    pub sampled: AnomalyReport,
    /// The three reports' telemetry folded under the `healthy.`,
    /// `faulted.`, and `sampled.` prefixes — the golden artefact.
    pub snapshot: MetricsSnapshot,
}

impl AnomalySession {
    /// The detection invariant of the session: the faulted run must
    /// stand out (its peak score clears the healthy threshold and at
    /// least one window is flagged, sampled or not), the held-out
    /// healthy run must stay mostly quiet, and the sampler must have
    /// actually saved ingest. Returns the first violation, if any.
    pub fn check_detection(&self) -> Result<(), String> {
        if self.faulted.max_score() <= self.threshold {
            return Err(format!(
                "faulted peak score {:.4} does not clear the healthy threshold {:.4}",
                self.faulted.max_score(),
                self.threshold
            ));
        }
        if self.faulted.n_flagged() == 0 {
            return Err("faulted run raised no anomaly verdicts".into());
        }
        if self.sampled.n_flagged() == 0 {
            return Err("sampled faulted run raised no anomaly verdicts".into());
        }
        // The held-out healthy run should look like the training
        // distribution: no more than a quarter of its windows flagged.
        if self.healthy.n_flagged() * 4 > self.healthy.scores.len() {
            return Err(format!(
                "held-out healthy run flagged {}/{} windows",
                self.healthy.n_flagged(),
                self.healthy.scores.len()
            ));
        }
        let stats = self
            .sampled
            .sampler
            .as_ref()
            .ok_or("sampled report carries no sampler stats")?;
        if stats.dropped() == 0 {
            return Err("adaptive sampler dropped nothing".into());
        }
        Ok(())
    }
}

/// The scenario every leg of the session runs: the smoke-scale target
/// under steady background interference (normal operation for this
/// cluster), a dense 100 ms server monitor so 1 s windows hold ten
/// samples per device, and — for the faulted leg — the novel-fault
/// plan the supervised label space knows nothing about.
pub fn session_scenario(seed: u64, faulted: bool) -> Scenario {
    let mut cluster = ClusterConfig::small();
    cluster.sample_interval = SimDuration::from_millis(100);
    let scenario = Scenario {
        cluster,
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, seed)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    if !faulted {
        return scenario;
    }
    // Every OST degrades at once (a RAID-rebuild-like event) while the
    // MDS lock path storms — nothing the supervised bins were trained
    // to recognise.
    let mut plan = FaultPlan::new().with(FaultEvent::MdsLockStorm {
        from: SimTime::ZERO,
        until: SimTime::ZERO + SimDuration::from_secs(40),
        revoke_factor: 4.0,
    });
    for dev in 0..scenario.cluster.n_osts() {
        plan = plan.with(FaultEvent::SlowDisk {
            dev,
            factor: 7.0,
            from: SimTime::ZERO,
            until: SimTime::ZERO + SimDuration::from_secs(40),
        });
    }
    scenario.with_fault_plan(plan)
}

/// Run the whole session. The returned telemetry must be byte-identical
/// across reruns and rayon worker-thread counts — the golden test gates
/// on that at 1, 2, and 8 threads.
pub fn run_anomaly_session() -> Result<AnomalySession, QiError> {
    let wcfg = WindowConfig::seconds(1);
    // Server-side features only: hardware degradation lives in the
    // device counters (§III-B), while client blocks mostly add healthy
    // cross-seed variance that blunts the detector.
    let fcfg = FeatureConfig {
        client: false,
        server: true,
    };

    // ------------------------------------------------------------------
    // 1. Healthy baselines: three seeded runs of the smoke scenario
    //    (interference present — that IS normal operation here).
    //    These are the ONLY data the forest ever trains on.
    // ------------------------------------------------------------------
    let mut healthy_traces = Vec::new();
    let mut n_devices = 0;
    for seed in [1, 2, 3] {
        let scenario = session_scenario(seed, false);
        n_devices = scenario.cluster.n_devices();
        let (_, trace) = scenario.run()?;
        healthy_traces.push(trace);
    }

    // ------------------------------------------------------------------
    // 2. Fit the detector: seeded isolation forest, verdict threshold
    //    at the p95 of the healthy training scores.
    // ------------------------------------------------------------------
    let forest = ForestConfig {
        n_trees: 50,
        sample_size: 64,
        seed: 7,
    };
    let detector =
        AnomalyDetector::fit_healthy(forest, wcfg, fcfg, n_devices, &healthy_traces, 95.0);
    let threshold = detector.threshold();

    // ------------------------------------------------------------------
    // 3. Held-out runs the forest never saw: the same scenario at a
    //    fresh seed, healthy and under the novel-fault plan.
    // ------------------------------------------------------------------
    let (_, healthy_trace) = session_scenario(11, false).run()?;
    let (_, faulted_trace) = session_scenario(11, true).run()?;

    let healthy = detector.analyze(&healthy_trace);
    let faulted = detector.analyze(&faulted_trace);

    // ------------------------------------------------------------------
    // 4. The same faulted trace read through the adaptive sampler:
    //    quiet device-windows thin to one sample, active ones keep up
    //    to the budget — detection must survive the thinning.
    // ------------------------------------------------------------------
    let sampled = detector
        .clone()
        .with_sampler(SamplerConfig {
            budget: 4,
            quiet_keep: 1,
            seed: 9,
        })
        .analyze(&faulted_trace);

    let mut snapshot = MetricsSnapshot::new();
    snapshot.absorb("healthy", &healthy.snapshot);
    snapshot.absorb("faulted", &faulted.snapshot);
    snapshot.absorb("sampled", &sampled.snapshot);

    Ok(AnomalySession {
        threshold,
        healthy,
        faulted,
        sampled,
        snapshot,
    })
}
