//! Fault-injection smoke sweep: run one scenario healthy and under a
//! battery of fault plans, print how each degradation regime shifts
//! completion time and the retry/fault telemetry, gate on byte-exact
//! replay of the nastiest plan, and show the label-distribution shift a
//! `SlowDisk` plan produces in a dataset sweep.
//!
//! ```sh
//! cargo run --release --example fault_sweep
//! ```
//!
//! Exits non-zero if a faulted replay is not byte-identical, so
//! `scripts/bench.sh --smoke` can use it as a determinism gate.

use quanterference_repro::framework::prelude::*;
use quanterference_repro::simkit::{SimDuration, SimTime};

fn t(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// The fixed target: ior-easy-read alone on a small cluster. All fault
/// plans are injected into this same scenario so slowdowns isolate the
/// fault, not workload mix.
fn scenario() -> Scenario {
    Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 11)
    }
}

/// The fault regimes to sweep, roughly in increasing nastiness.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "slow-disk (dev 0 4x, 0s-20s)",
            FaultPlan::new().with(FaultEvent::SlowDisk {
                dev: 0,
                factor: 4.0,
                from: t(0),
                until: t(20),
            }),
        ),
        (
            "disk-stall (dev 0, 100ms at 50ms)",
            FaultPlan::new().with(FaultEvent::DiskStall {
                dev: 0,
                at: SimTime::ZERO + SimDuration::from_millis(50),
                duration: SimDuration::from_millis(100),
            }),
        ),
        (
            "rpc-loss (5% everywhere, 0s-60s)",
            FaultPlan::new().with(FaultEvent::RpcDrop {
                src: None,
                dst: None,
                prob: 0.05,
                from: t(0),
                until: t(60),
            }),
        ),
        (
            "oss-crash + lock-storm",
            FaultPlan::new()
                .with(FaultEvent::OssThreadCrash {
                    oss: 0,
                    at: SimTime::ZERO + SimDuration::from_millis(20),
                    restart: Some(t(10)),
                    remaining: 0.25,
                })
                .with(FaultEvent::MdsLockStorm {
                    from: t(0),
                    until: t(10),
                    revoke_factor: 3.0,
                }),
        ),
    ]
}

fn fault_counters(trace: &RunTrace) -> String {
    let c = |k: &str| trace.metrics.counter(k).unwrap_or(0);
    format!(
        "drops {} retries {} timeouts {} stalls {} storm-revocations {}",
        c("pfs.rpc.dropped"),
        c("pfs.rpc.retries"),
        c("pfs.rpc.timeouts"),
        c("pfs.faults.disk_stalls"),
        c("pfs.faults.lock_storm_revocations"),
    )
}

fn main() -> Result<(), QiError> {
    // ------------------------------------------------------------------
    // 1. Healthy reference run.
    // ------------------------------------------------------------------
    let s = scenario();
    let (app, healthy) = s.run()?;
    let healthy_dur = target_duration(&healthy, app).expect("healthy run finishes");
    println!("== fault smoke sweep (target: ior-easy-read, small cluster) ==");
    println!("healthy: {healthy_dur}  [{}]", fault_counters(&healthy));

    // ------------------------------------------------------------------
    // 2. The same scenario under each fault regime.
    // ------------------------------------------------------------------
    for (name, plan) in plans() {
        let (_, faulted) = s.clone().with_fault_plan(plan).run()?;
        let slowdown = completion_slowdown(&healthy, &faulted, app).expect("faulted run finishes");
        println!(
            "{name}: slowdown {slowdown:.2}x  [{}]",
            fault_counters(&faulted)
        );
    }

    // ------------------------------------------------------------------
    // 3. Determinism gate: the chaos plan (every event type at once plus
    //    retries with jitter) must replay byte-identically, telemetry
    //    JSON included.
    // ------------------------------------------------------------------
    let mut chaos = FaultPlan::new();
    for (_, plan) in plans() {
        for ev in plan.events() {
            chaos.push(*ev);
        }
    }
    let chaotic = s.clone().with_fault_plan(chaos);
    let (_, a) = chaotic.run()?;
    let (_, b) = chaotic.run()?;
    if a.metrics.to_json() != b.metrics.to_json() || a.end != b.end {
        eprintln!("FAIL: faulted replay diverged between identical runs");
        std::process::exit(1);
    }
    println!(
        "replay: byte-identical across reruns  [{}]",
        fault_counters(&a)
    );

    // ------------------------------------------------------------------
    // 4. Dataset dimension: a SlowDisk fault spec widens the label
    //    distribution versus the identical healthy sweep.
    // ------------------------------------------------------------------
    let mut spec = DatasetSpec::smoke();
    spec.targets = vec![WorkloadKind::IorEasyRead];
    spec.noise_kinds = vec![WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1];
    spec.seeds = vec![1, 2];
    spec.include_baseline_windows = false;
    spec.faults = vec![
        FaultSpec::Healthy,
        FaultSpec::SlowOsts {
            factor: 4.0,
            from_s: 0,
            dur_s: 60,
        },
    ];
    let gen = generate(&spec)?;
    let labels = gen.bins.labels();
    println!("\n== faulted dataset sweep (healthy + slow-osts grid) ==");
    for fault in &spec.faults {
        let mut counts = vec![0usize; labels.len()];
        for (m, &y) in gen.meta.iter().zip(gen.data.y.iter()) {
            if m.fault == *fault {
                counts[y] += 1;
            }
        }
        let total: usize = counts.iter().sum::<usize>().max(1);
        let shares: Vec<String> = labels
            .iter()
            .zip(&counts)
            .map(|(l, &c)| format!("{l} {:.0}%", 100.0 * c as f64 / total as f64))
            .collect();
        println!(
            "{fault:?}: {} windows ({})",
            counts.iter().sum::<usize>(),
            shares.join(", ")
        );
    }
    Ok(())
}
