//! Regenerate the paper's Figure 1: per-operation I/O times of the Enzo
//! proxy under increasing and differently-typed background interference,
//! rendered as an ASCII sparkline plus a CSV for plotting.
//!
//! ```sh
//! cargo run --release --example enzo_timeline
//! ```

use quanterference_repro::framework::experiments::{
    fig_one_a, fig_one_b, series_mean, series_table, EnzoSeries, FigOneConfig,
};
use quanterference_repro::framework::prelude::QiError;

fn spark(series: &EnzoSeries, max: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .durations
        .iter()
        .map(|&d| {
            let idx = ((d / max) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

fn show(title: &str, series: &[EnzoSeries]) {
    println!("{title}");
    let max = series
        .iter()
        .flat_map(|s| s.durations.iter().copied())
        .fold(f64::MIN_POSITIVE, f64::max);
    for s in series {
        println!(
            "  {:<38} mean {:>8.3} ms  {}",
            s.label,
            series_mean(s) * 1e3,
            spark(s, max)
        );
    }
    println!();
}

fn main() -> Result<(), QiError> {
    let cfg = FigOneConfig::paper();

    println!("Figure 1(a): Enzo per-op I/O time vs amount of ior-easy-write noise\n");
    let a = fig_one_a(&cfg, 3)?;
    show(
        "(x-axis: op index of rank 0, smoothed; bar height: op I/O time)",
        &a,
    );
    let _ = series_table(&a).write_csv("results/fig1a_enzo_vs_write_levels.csv");

    println!("Figure 1(b): Enzo per-op I/O time, data- vs metadata-intensive noise\n");
    let b = fig_one_b(&cfg, 3)?;
    show(
        "(same op sequence; note different ops suffer under different noise)",
        &b,
    );
    let _ = series_table(&b).write_csv("results/fig1b_enzo_noise_types.csv");

    println!("CSVs written to results/fig1a_*.csv and results/fig1b_*.csv");
    Ok(())
}
