//! Train an interference model on the IO500 grid, ship it through its
//! `QIMODEL` file — schema section and all — and deploy it as an online
//! predictor against runs it has never seen (different seeds and
//! interference mixes), reporting per-window predictions vs truth — the
//! deployment loop of the paper's Figure 2.
//!
//! Everything rides the one feature pipeline: the training vectors, the
//! predictor's online vectors, and the schema validation that refuses a
//! model whose training-time layout disagrees with the serving monitor.
//!
//! ```sh
//! cargo run --release --example online_predictor
//! ```

use quanterference_repro::framework::prelude::*;
use quanterference_repro::ml::serialize::{model_from_text, model_to_text};
use quanterference_repro::serve::ModelRegistry;

fn main() -> Result<(), QiError> {
    // Train on a small IO500 grid (reduced scale so the example runs in
    // seconds; the benches use the full grid).
    let mut spec = DatasetSpec::smoke();
    spec.targets = vec![
        WorkloadKind::IorEasyRead,
        WorkloadKind::IorEasyWrite,
        WorkloadKind::MdtHardWrite,
    ];
    spec.noise_kinds = vec![WorkloadKind::IorEasyRead, WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1, 2];
    spec.seeds = vec![1, 2, 3];

    println!("== training on {} scenario runs ==", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 30,
        ..TrainConfig::default()
    };
    let (dataset, predictor, report) = train_and_evaluate(&spec, &tcfg, 99)?;
    println!(
        "dataset: {} windows, class counts {:?}",
        dataset.data.len(),
        dataset.class_counts()
    );
    println!("{}", report.render());
    println!("offline F1 = {:.3}", report.headline_f1());
    println!("feature schema: {}\n", dataset.schema);

    // The model ships as a QIMODEL v2 file with its schema embedded.
    // Loading it back restores the schema bit-for-bit, and a registry
    // configured for the same pipeline accepts and activates it.
    println!("== QIMODEL round trip + schema validation ==");
    let model = predictor.into_model();
    let text = model_to_text(&model);
    let restored = model_from_text(&text).map_err(|e| QiError::Serve(e.to_string()))?;
    assert_eq!(restored.schema(), &dataset.schema);
    println!(
        "serialized {} bytes; schema survived the round trip",
        text.len()
    );
    let mut registry = ModelRegistry::new(restored.shape(), dataset.schema.clone());
    registry.load_text(1, &text)?;
    registry.activate(1)?;
    println!("registry accepted and activated the model (v1 active)");

    // A registry monitoring with a different window length refuses the
    // very same file — before any inference could run on skewed vectors.
    let wrong_window =
        FeatureSchema::current(WindowConfig::seconds(2), spec.features, spec.imputation);
    let mut skewed = ModelRegistry::new(restored.shape(), wrong_window);
    match skewed.load_text(1, &text) {
        Err(e @ QiError::SchemaMismatch { .. }) => {
            println!("2s-window registry refused it, as it must:\n  {e}\n")
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }

    // Rebind the restored model for online scoring. Predictor::new
    // re-validates the schema against the monitoring configuration.
    let mut predictor = Predictor::new(
        restored,
        spec.window,
        spec.features,
        spec.cluster.n_devices(),
        dataset.bins.clone(),
        spec.imputation,
    )?;

    // Deploy: fresh runs with UNSEEN seeds, including an unseen noise mix.
    println!("== online deployment on unseen runs ==");
    let mut total = 0;
    let mut hits = 0;
    for (label, target, noise, instances, seed) in [
        (
            "seen mix, new seed",
            WorkloadKind::IorEasyRead,
            WorkloadKind::IorEasyWrite,
            2,
            77,
        ),
        (
            "unseen intensity",
            WorkloadKind::IorEasyWrite,
            WorkloadKind::IorEasyWrite,
            2,
            78,
        ),
        (
            "unseen noise kind",
            WorkloadKind::MdtHardWrite,
            WorkloadKind::IorHardWrite,
            2,
            79,
        ),
    ] {
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(target, seed)
        }
        .with_interference(InterferenceSpec {
            kind: noise,
            instances,
            ranks: 2,
        });
        let (app, base) = scenario.run_baseline()?;
        let (_, noisy) = scenario.run()?;
        let idx = BaselineIndex::new(&base, app);
        let truth = window_degradation(&idx, &noisy, app, spec.window);
        let scored = predictor.score_run(&noisy, app, &truth)?;
        let ok = scored.iter().filter(|(_, p, t)| p == t).count();
        println!(
            "{label:<22} target={:<15} noise={:<15} windows={:>3} correct={:>3}",
            target.name(),
            noise.name(),
            scored.len(),
            ok
        );
        total += scored.len();
        hits += ok;
    }
    println!(
        "\nonline accuracy: {hits}/{total} = {:.1}%",
        100.0 * hits as f64 / total.max(1) as f64
    );
    Ok(())
}
