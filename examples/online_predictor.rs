//! Train an interference model on the IO500 grid, then deploy it as an
//! online predictor against runs it has never seen (different seeds and
//! interference mixes), reporting per-window predictions vs truth — the
//! deployment loop of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example online_predictor
//! ```

use quanterference_repro::framework::prelude::*;

fn main() -> Result<(), QiError> {
    // Train on a small IO500 grid (reduced scale so the example runs in
    // seconds; the benches use the full grid).
    let mut spec = DatasetSpec::smoke();
    spec.targets = vec![
        WorkloadKind::IorEasyRead,
        WorkloadKind::IorEasyWrite,
        WorkloadKind::MdtHardWrite,
    ];
    spec.noise_kinds = vec![WorkloadKind::IorEasyRead, WorkloadKind::IorEasyWrite];
    spec.intensities = vec![1, 2];
    spec.seeds = vec![1, 2, 3];

    println!("== training on {} scenario runs ==", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 30,
        ..TrainConfig::default()
    };
    let (dataset, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 99)?;
    println!(
        "dataset: {} windows, class counts {:?}",
        dataset.data.len(),
        dataset.class_counts()
    );
    println!("{}", report.render());
    println!("offline F1 = {:.3}\n", report.headline_f1());

    // Deploy: fresh runs with UNSEEN seeds, including an unseen noise mix.
    println!("== online deployment on unseen runs ==");
    let mut total = 0;
    let mut hits = 0;
    for (label, target, noise, instances, seed) in [
        (
            "seen mix, new seed",
            WorkloadKind::IorEasyRead,
            WorkloadKind::IorEasyWrite,
            2,
            77,
        ),
        (
            "unseen intensity",
            WorkloadKind::IorEasyWrite,
            WorkloadKind::IorEasyWrite,
            2,
            78,
        ),
        (
            "unseen noise kind",
            WorkloadKind::MdtHardWrite,
            WorkloadKind::IorHardWrite,
            2,
            79,
        ),
    ] {
        let scenario = Scenario {
            cluster: ClusterConfig::small(),
            small: true,
            target_ranks: 2,
            ..Scenario::baseline(target, seed)
        }
        .with_interference(InterferenceSpec {
            kind: noise,
            instances,
            ranks: 2,
        });
        let (app, base) = scenario.run_baseline()?;
        let (_, noisy) = scenario.run()?;
        let idx = BaselineIndex::new(&base, app);
        let truth = window_degradation(&idx, &noisy, app, spec.window);
        let scored = predictor.score_run(&noisy, app, &truth)?;
        let ok = scored.iter().filter(|(_, p, t)| p == t).count();
        println!(
            "{label:<22} target={:<15} noise={:<15} windows={:>3} correct={:>3}",
            target.name(),
            noise.name(),
            scored.len(),
            ok
        );
        total += scored.len();
        hits += ok;
    }
    println!(
        "\nonline accuracy: {hits}/{total} = {:.1}%",
        100.0 * hits as f64 / total.max(1) as f64
    );
    Ok(())
}
