//! Regenerate the paper's Table I at full cluster scale: the 7×7 IO500
//! cross-interference slowdown matrix.
//!
//! ```sh
//! cargo run --release --example interference_matrix
//! ```
//!
//! Pass `--smoke` for the reduced-scale variant used in tests.

use quanterference_repro::framework::experiments::{table_one, TableOneConfig};
use quanterference_repro::framework::prelude::QiError;

fn main() -> Result<(), QiError> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        TableOneConfig::smoke()
    } else {
        TableOneConfig::paper()
    };
    println!(
        "Table I — IO500 task slowdown under interference ({} scale)",
        if smoke { "smoke" } else { "paper" }
    );
    println!(
        "{} instances x {} ranks of background noise per cell; mean over {} seeds\n",
        cfg.instances,
        cfg.noise_ranks,
        cfg.seeds.len()
    );
    let t0 = std::time::Instant::now();
    let table = table_one(&cfg)?;
    println!("{}", table.render());
    println!("(generated in {:.1?})", t0.elapsed());

    let out = std::path::Path::new("results/table1_io500_matrix.csv");
    if table.to_table().write_csv(out).is_ok() {
        println!("CSV written to {}", out.display());
    }
    Ok(())
}
