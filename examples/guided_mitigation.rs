//! Prediction-guided interference mitigation, end to end: train the
//! model, let it flag the windows where a target will suffer ≥2x
//! slowdown, throttle the interfering application in exactly those
//! windows, and compare the three executions (ideal / interfered /
//! mitigated) — the closed loop the paper motivates in §II-B.
//!
//! ```sh
//! cargo run --release --example guided_mitigation
//! ```

use quanterference_repro::framework::prelude::*;

fn main() -> Result<(), QiError> {
    // 1. Train the predictor on the smoke IO500 grid.
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=5).collect();
    spec.intensities = vec![1, 2, 3];
    println!("training on {} scenario runs...", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (_, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 11)?;
    println!("model F1 = {:.3}\n", report.headline_f1());

    // 2. A victim: bulk writer crushed by a concurrent small-write storm.
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyWrite, 123)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorHardWrite,
        instances: 2,
        ranks: 2,
    });

    // 3. Predict, throttle, replay.
    let outcome = prediction_guided_throttling(&scenario, &mut predictor, 1)?;
    println!("ideal (no interference):      {:.3} s", outcome.baseline_s);
    println!(
        "under interference:           {:.3} s",
        outcome.unmitigated_s
    );
    println!("with guided throttling:       {:.3} s", outcome.mitigated_s);
    println!("windows throttled:            {:?}", {
        let mut w: Vec<_> = outcome.throttled_windows.iter().collect();
        w.sort();
        w
    });
    println!(
        "slowdown recovered:           {:.0}%",
        outcome.recovered_fraction() * 100.0
    );
    println!(
        "interference throughput cost: {:.0}% ({} -> {} background ops)",
        outcome.noise_cost_fraction() * 100.0,
        outcome.noise_ops_unmitigated,
        outcome.noise_ops_mitigated
    );
    println!(
        "\n(the throttle engages only in predicted >=2x windows — a uniform\n\
         rate limit would tax the background job during harmless windows too)"
    );
    Ok(())
}
