//! Prediction-guided interference mitigation, end to end: train the
//! model, wrap it as an online prediction service, install a
//! [`ControlLoop`] on the cluster that throttles the interfering
//! applications only while the target's predicted slowdown is ≥2x, and
//! compare four executions — ideal / interfered / guided / uniform —
//! the closed loop the paper motivates in §II-B.
//!
//! ```sh
//! cargo run --release --example guided_mitigation
//! ```

use quanterference_repro::framework::prelude::*;

fn main() -> Result<(), QiError> {
    // 1. Train the predictor on the smoke IO500 grid, at 100 ms windows
    //    so the online loop gets several decision points inside the
    //    short smoke-scale target run.
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=4).collect();
    spec.window = WindowConfig::millis(100);
    println!("training on {} scenario runs...", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 30,
        ..TrainConfig::default()
    };
    let (_, predictor, report) = train_and_evaluate(&spec, &tcfg, 3)?;
    println!("model F1 = {:.3}\n", report.headline_f1());

    // 2. A victim: a metadata-heavy target crushed ~7-12x per window by
    //    two looping bulk writers hammering the same OSTs.
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::MdtHardWrite, 55)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    let target = AppId(0);
    let noise = noise_app_ids(&scenario);
    let mut tenants = vec![target];
    tenants.extend(noise.iter().copied());

    // 3. The guided controller: the trained model serves predictions at
    //    every window boundary *inside* the mitigated run; the policy
    //    rate-limits the noise apps only while the target's predicted
    //    bin is >=2x, and the hysteresis gate keeps it from flapping.
    let rate = 5.0e6;
    let service = serve_predictor(predictor, &tenants, 2)?;
    let guided = ControlLoop::builder()
        .predictor(service)
        .policy(GuidedThrottle::new(target, noise.clone(), 1, rate)?)
        .n_devices(scenario.cluster.n_devices())
        .build()?;
    let outcome = evaluate_mitigation(&scenario, guided)?;

    // 4. The baseline the paper calls inefficient (§II-A): the same
    //    rate limit, applied to every window unconditionally.
    let uniform = ControlLoop::builder()
        .policy(UniformThrottle::new(noise, rate)?)
        .window(WindowConfig::millis(100))
        .build()?;
    let flat = evaluate_mitigation(&scenario, uniform)?;

    println!("ideal (no interference):      {:.3} s", outcome.baseline_s);
    println!(
        "under interference:           {:.3} s",
        outcome.unmitigated_s
    );
    println!("with guided control loop:     {:.3} s", outcome.mitigated_s);
    println!("with uniform throttling:      {:.3} s", flat.mitigated_s);
    println!("windows throttled (guided):   {:?}", {
        let mut w: Vec<_> = outcome.throttled_windows.iter().collect();
        w.sort();
        w
    });
    println!(
        "directives applied (guided):  {} ({} rate limits)",
        outcome.directives.len(),
        outcome
            .metrics
            .counter("pfs.control.rate_limits")
            .unwrap_or(0),
    );
    println!(
        "slowdown recovered:           guided {:.0}% / uniform {:.0}%",
        outcome.recovered_fraction() * 100.0,
        flat.recovered_fraction() * 100.0
    );
    println!(
        "interference throughput cost: guided {:.0}% / uniform {:.0}%",
        outcome.noise_cost_fraction() * 100.0,
        flat.noise_cost_fraction() * 100.0
    );
    println!(
        "\n(the guided loop engages only in predicted >=2x windows — the\n\
         uniform rate limit taxes the background job during harmless\n\
         windows too, which is why its throughput cost is higher)"
    );
    Ok(())
}
