//! Quickstart: build a cluster, measure a workload alone and under
//! interference, label the degradation, train a model, and predict.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quanterference_repro::framework::prelude::*;

fn main() -> Result<(), QiError> {
    // ------------------------------------------------------------------
    // 1. A scenario: ior-easy-read measured while 2 looping instances of
    //    ior-easy-read run on the other client nodes (the paper's
    //    data-collection methodology, §III-D).
    // ------------------------------------------------------------------
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 42)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyRead,
        instances: 2,
        ranks: 2,
    });

    println!("== running baseline (target alone) ==");
    let (app, base) = scenario.run_baseline()?;
    let base_dur = target_duration(&base, app).expect("baseline finished");
    println!("baseline: {} ops in {}", base.ops_of(app).count(), base_dur);

    println!("\n== running with 2x ior-easy-read interference ==");
    let (_, noisy) = scenario.run()?;
    let noisy_dur = target_duration(&noisy, app).expect("target finished");
    let slowdown = completion_slowdown(&base, &noisy, app).expect("both finished");
    println!("interfered: {noisy_dur} -> slowdown {slowdown:.2}x");

    // ------------------------------------------------------------------
    // 2. Label each time window with its degradation level (§III-D).
    // ------------------------------------------------------------------
    let window = WindowConfig::seconds(1);
    let idx = BaselineIndex::new(&base, app);
    let levels = window_degradation(&idx, &noisy, app, window);
    let mut windows: Vec<_> = levels.iter().collect();
    windows.sort_by_key(|(w, _)| **w);
    println!("\n== per-window degradation levels ==");
    for (w, level) in windows {
        let bin = Bins::binary().classify(*level);
        println!(
            "window {w}: {level:.2}x -> {}",
            Bins::binary().labels()[bin]
        );
    }

    // ------------------------------------------------------------------
    // 3. Generate a labelled dataset over a scenario grid, train the
    //    kernel-based network, evaluate on the held-out 20% (Fig. 3).
    // ------------------------------------------------------------------
    println!("\n== generating dataset + training the kernel network ==");
    let mut spec = DatasetSpec::smoke();
    spec.intensities = vec![1, 2, 3];
    spec.seeds = (1..=6).collect();
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (dataset, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 7)?;
    println!(
        "dataset: {} windows ({:?} per class)",
        dataset.data.len(),
        dataset.class_counts()
    );
    println!("{}", report.render());
    println!(
        "headline F1 = {:.3} on {} held-out windows",
        report.headline_f1(),
        report.test_size
    );

    // ------------------------------------------------------------------
    // 4. Use the trained predictor on the fresh interfered run.
    // ------------------------------------------------------------------
    println!("\n== online prediction on the interfered run ==");
    let scored = predictor.score_run(&noisy, app, &levels)?;
    let correct = scored.iter().filter(|(_, p, t)| p == t).count();
    println!(
        "predicted {} windows, {}/{} match the ground-truth bin",
        scored.len(),
        correct,
        scored.len()
    );
    Ok(())
}
