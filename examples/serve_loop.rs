//! The online prediction service, end to end: train offline, load both
//! model versions into the registry, then stream a live interfered run
//! (executed under an active fault plan) through the streaming monitor
//! into the micro-batching serve engine — including a hot swap to a
//! retrained model and an overloaded replay where the `Shed` policy
//! keeps the queue bounded.
//!
//! ```sh
//! cargo run --release --example serve_loop
//! ```
//!
//! Exits non-zero if the serving accounting invariant breaks or the
//! session is not byte-identical across worker-thread counts and shard
//! counts, so `scripts/bench.sh --smoke` can use it as a determinism
//! gate.

use quanterference_repro::serve_demo::run_serve_session;
use quanterference_repro::simkit::QiError;

fn main() -> Result<(), QiError> {
    println!("== online serving session (2 worker threads, 2 shards) ==");
    let s = run_serve_session(Some(2), 2)?;
    println!(
        "offline F1 = {:.3}, serving shape [{}]",
        s.offline_f1, s.shape
    );

    println!("\n-- pass 1: model v1, generous admission --");
    println!(
        "{} windows -> {} requests, {} answered ({} batches)",
        s.v1.windows,
        s.v1.submitted,
        s.v1.predictions.len(),
        s.snapshot.counter("serve.batches").unwrap_or(0),
    );
    println!("\n-- hot swap to v2, then pass 2 on the same engine --");
    println!(
        "{} requests, {} answered; active version now {}",
        s.v2.submitted,
        s.v2.predictions.len(),
        s.snapshot
            .gauge("serve.registry.active_version")
            .unwrap_or(-1.0),
    );
    let agree =
        s.v1.predictions
            .iter()
            .zip(&s.v2.predictions)
            .filter(|(a, b)| a.class == b.class)
            .count();
    println!(
        "v1 and v2 agree on {}/{} windows",
        agree,
        s.v1.predictions.len()
    );

    println!("\n-- overloaded replay: 1 req/s admission, Shed policy --");
    println!(
        "{} requests: {} answered, {} shed (queue stayed bounded)",
        s.overload.submitted,
        s.overload.predictions.len(),
        s.overload.shed,
    );
    for k in [
        "serve.batch_size",
        "serve.queue_wait_us.p50",
        "serve.queue_wait_us.p95",
        "serve.infer_us.p99",
    ] {
        if let Some(g) = s.snapshot.gauge(k) {
            println!("  main engine {k} = {g:.1}");
        } else if let Some(st) = s.snapshot.stats(k) {
            println!("  main engine {k} mean = {:.2}", st.mean());
        }
    }

    println!("\n-- sharded replay: same trace, tenant-sharded engine --");
    println!(
        "{} requests v1, {} requests v2; sharded engine answered {}",
        s.sharded_v1.submitted,
        s.sharded_v2.submitted,
        s.sharded_snapshot.counter("serve.answered").unwrap_or(0),
    );

    // Gate 1: the accounting invariant on all three engines.
    if let Err(why) = s.check_accounting() {
        eprintln!("FAIL: {why}");
        std::process::exit(1);
    }

    // Gate 2: the fused kernels are row-independent, so the sharded
    // engine must predict the same class for every (tenant, window)
    // the single engine answered — batching composition be damned.
    let classes = |preds: &[quanterference_repro::serve::Prediction]| {
        let mut v: Vec<(u32, u64, usize)> = preds
            .iter()
            .map(|p| (p.tenant.0, p.window, p.class))
            .collect();
        v.sort_unstable();
        v
    };
    if classes(&s.v1.predictions) != classes(&s.sharded_v1.predictions) {
        eprintln!("FAIL: sharded engine predicted different classes than the single engine");
        std::process::exit(1);
    }

    // Gate 3: byte-identical serving telemetry at a different worker
    // count AND a different shard count (the batched forward pass is
    // bit-identical at any width; lanes are shard-count-blind).
    let other = run_serve_session(Some(1), 4)?;
    if other.snapshot.to_json() != s.snapshot.to_json()
        || other.overload_snapshot.to_json() != s.overload_snapshot.to_json()
    {
        eprintln!("FAIL: serving telemetry diverged between 1 and 2 worker threads");
        std::process::exit(1);
    }
    if other.sharded_snapshot.to_json() != s.sharded_snapshot.to_json() {
        eprintln!("FAIL: sharded telemetry diverged between 2 and 4 shards");
        std::process::exit(1);
    }
    println!("\nreplay: serving telemetry byte-identical at 1/2 worker threads and 2/4 shards");
    Ok(())
}
