//! Drive the *streaming* feature pipeline the way the deployed
//! framework would: events flow in time order, windows are emitted the
//! moment they can no longer change, and each emitted window is
//! immediately classified by the trained predictor — the online loop of
//! the paper's Figure 2. The pipeline here is the very same code batch
//! dataset generation runs, so what the model sees online is what it
//! was trained on.
//!
//! ```sh
//! cargo run --release --example streaming_windows
//! ```

use quanterference_repro::framework::prelude::*;
use quanterference_repro::monitor::{EmittedWindow, FeaturePipeline};

fn main() -> Result<(), QiError> {
    // 1. Train a model offline.
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=4).collect();
    spec.intensities = vec![1, 2, 3];
    println!("training offline on {} runs...", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (_, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 5)?;
    println!("offline F1 = {:.3}\n", report.headline_f1());

    // 2. A fresh run whose events we replay through the streaming path.
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 77)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    let (app, trace) = scenario.run()?;
    let n_devices = scenario.cluster.n_devices();

    // 3. Stream the trace through the pipeline in event-time order. The
    //    pipeline merges ops (by completion), RPCs (by issue), and
    //    server samples (by sample time) internally and emits every
    //    window the instant its close time passes the watermark.
    let mut pipeline = FeaturePipeline::new(spec.window, spec.features, n_devices);
    println!("pipeline schema: {}", pipeline.schema());
    let mut emitted: Vec<EmittedWindow> = pipeline.ingest_trace(&trace)?;
    emitted.extend(pipeline.finish());
    println!(
        "streamed {} ops, {} rpcs, {} samples -> {} finalized windows",
        trace.ops.len(),
        trace.rpcs.len(),
        trace.samples.len(),
        emitted.len()
    );

    // 4. Classify each window the instant it is emitted. The per-app
    //    feature blocks come from the pipeline too — the same assembly
    //    the training vectors went through.
    println!("\nlive predictions for the target app:");
    for w in &emitted {
        let Some(client) = w.clients.get(&app) else {
            continue;
        };
        for (block_app, block, _avail) in
            w.feature_blocks(spec.features, n_devices, spec.window.window)
        {
            if block_app != app {
                continue;
            }
            let bin = predictor.predict_block(&block)?;
            println!(
                "  window {:>2}: {:>4} ops, {:>8} bytes -> predicted {}",
                w.window,
                client.total_ops(),
                client.total_bytes(),
                predictor.bin_labels()[bin]
            );
        }
    }
    Ok(())
}
