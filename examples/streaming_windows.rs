//! Drive the *streaming* monitor the way the deployed framework would:
//! events flow in time order, windows are emitted the moment they can no
//! longer change, and each emitted window is immediately classified by
//! the trained predictor — the online loop of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example streaming_windows
//! ```

use quanterference_repro::framework::prelude::*;
use quanterference_repro::monitor::features::server_vector;
use quanterference_repro::monitor::{EmittedWindow, StreamingMonitor};
use quanterference_repro::pfs::ids::DeviceId;

fn main() -> Result<(), QiError> {
    // 1. Train a model offline.
    let mut spec = DatasetSpec::smoke();
    spec.seeds = (1..=4).collect();
    spec.intensities = vec![1, 2, 3];
    println!("training offline on {} runs...", spec.n_runs());
    let tcfg = TrainConfig {
        epochs: 25,
        ..TrainConfig::default()
    };
    let (_, mut predictor, report) = train_and_evaluate(&spec, &tcfg, 5)?;
    println!("offline F1 = {:.3}\n", report.headline_f1());

    // 2. A fresh run whose events we replay through the streaming path.
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::IorEasyRead, 77)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    let (app, trace) = scenario.run()?;
    let n_devices = scenario.cluster.n_devices();

    // 3. Merge the three event streams in time order and feed them in.
    let mut monitor = StreamingMonitor::new(spec.window, n_devices);
    let mut emitted: Vec<EmittedWindow> = Vec::new();
    let mut oi = 0;
    let mut ri = 0;
    let mut si = 0;
    loop {
        let t_op = trace.ops.get(oi).map(|o| o.completed);
        let t_rpc = trace.rpcs.get(ri).map(|r| r.issued);
        let t_smp = trace.samples.get(si).map(|s| s.time);
        let next = [t_op, t_rpc, t_smp].into_iter().flatten().min();
        let Some(next) = next else { break };
        if t_op == Some(next) {
            emitted.extend(monitor.push_op(&trace.ops[oi])?);
            oi += 1;
        } else if t_rpc == Some(next) {
            emitted.extend(monitor.push_rpc(&trace.rpcs[ri])?);
            ri += 1;
        } else {
            emitted.extend(monitor.push_sample(&trace.samples[si])?);
            si += 1;
        }
    }
    emitted.extend(monitor.finish());
    println!(
        "streamed {} ops, {} rpcs, {} samples -> {} finalized windows",
        oi,
        ri,
        si,
        emitted.len()
    );

    // 4. Classify each window the instant it is emitted.
    println!("\nlive predictions for the target app:");
    for w in &emitted {
        let Some(client) = w.clients.get(&app) else {
            continue;
        };
        let mut block = Vec::new();
        for d in 0..n_devices {
            let dev = DeviceId(d);
            block.extend(server_vector(
                spec.features,
                Some(client),
                w.servers.get(&dev),
                dev,
                spec.window.window,
            ));
        }
        let bin = predictor.predict_block(&block)?;
        println!(
            "  window {:>2}: {:>4} ops, {:>8} bytes -> predicted {}",
            w.window,
            client.total_ops(),
            client.total_bytes(),
            predictor.bin_labels()[bin]
        );
    }
    Ok(())
}
