//! Export a run's operation trace in the Darshan-DXT-like format the
//! paper's Figure 1 analysis consumes, re-import it, and verify the
//! round trip — the offline trace workflow of the paper's labelling
//! pipeline.
//!
//! ```sh
//! cargo run --release --example dxt_trace_export
//! ```

use quanterference_repro::framework::prelude::*;
use quanterference_repro::monitor::{export_dxt, import_dxt};

fn main() -> Result<(), QiError> {
    let scenario = Scenario {
        cluster: ClusterConfig::small(),
        small: true,
        target_ranks: 2,
        ..Scenario::baseline(WorkloadKind::Enzo, 13)
    }
    .with_interference(InterferenceSpec {
        kind: WorkloadKind::IorEasyWrite,
        instances: 2,
        ranks: 2,
    });
    println!("running the Enzo proxy under interference...");
    let (app, trace) = scenario.run()?;
    let n_ops = trace.ops_of(app).count();
    println!("captured {n_ops} operations");

    let text = export_dxt(&trace, app);
    let path = "results/enzo_interfered.dxt";
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write(path, &text).expect("write DXT log");
    println!("wrote {} ({} bytes)", path, text.len());

    // Show the head of the log, like `darshan-dxt-parser` output.
    println!("\nfirst lines of the log:");
    for line in text.lines().take(8) {
        println!("  {line}");
    }

    // Round trip.
    let ops = import_dxt(&text, app).expect("parse back");
    assert_eq!(ops.len(), n_ops);
    let slowest = ops
        .iter()
        .max_by_key(|o| o.duration())
        .expect("non-empty trace");
    println!(
        "\nround trip ok: {} ops; slowest was {} {} ({} bytes) at {}",
        ops.len(),
        slowest.token,
        slowest.kind.label(),
        slowest.bytes,
        slowest.duration(),
    );
    Ok(())
}
